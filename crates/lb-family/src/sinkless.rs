//! Sinkless orientation — the classical round elimination fixed point.
//!
//! Brandt et al. \[STOC'16\] proved the Ω(log log n) randomized lower bound
//! for sinkless orientation via what became round elimination; the problem
//! is the canonical *fixed point*: `R̄(R(SO)) = SO` (up to renaming) on
//! Δ-regular trees for Δ ≥ 3. The paper cites this line of work in §1.3;
//! here it serves as an independent correctness anchor for the engine
//! (experiment E14).

use relim_core::error::{RelimError, Result};
use relim_core::roundelim::rr_step;
use relim_core::{iso, Alphabet, Constraint, Label, LabelSet, Line, Problem};

/// The sinkless orientation problem on Δ-regular trees in its *fixed-point*
/// encoding: labels `O` (my outgoing claim) and `I` (other edges), node
/// constraint `O I^(Δ−1)` (claim exactly one edge), edge constraint
/// `[O I] I` (no edge claimed from both sides).
///
/// # Errors
///
/// Requires `Δ ≥ 2`.
pub fn sinkless_orientation(delta: u32) -> Result<Problem> {
    if delta < 2 {
        return Err(RelimError::InvalidParameter {
            message: format!("sinkless orientation requires delta >= 2, got {delta}"),
        });
    }
    let alphabet = Alphabet::new(&["O", "I"])?;
    let o = LabelSet::singleton(Label::new(0));
    let i = LabelSet::singleton(Label::new(1));
    let node = Constraint::from_lines(&[Line::new(vec![(o, 1), (i, delta - 1)]).expect("valid")])?;
    let edge = Constraint::from_lines(&[Line::new(vec![(o.union(i), 1), (i, 1)]).expect("valid")])?;
    Problem::new(alphabet, node, edge)
}

/// The *relaxed* encoding of sinkless orientation: node constraint
/// `O [O I]^(Δ−1)` ("at least one outgoing"), edge constraint `O I`
/// ("every edge consistently oriented"). One round elimination step maps it
/// onto the fixed-point encoding ([`sinkless_orientation`]).
///
/// # Errors
///
/// Requires `Δ ≥ 2`.
pub fn sinkless_orientation_strict_edges(delta: u32) -> Result<Problem> {
    if delta < 2 {
        return Err(RelimError::InvalidParameter {
            message: format!("sinkless orientation requires delta >= 2, got {delta}"),
        });
    }
    let alphabet = Alphabet::new(&["O", "I"])?;
    let o = LabelSet::singleton(Label::new(0));
    let i = LabelSet::singleton(Label::new(1));
    let node =
        Constraint::from_lines(
            &[Line::new(vec![(o, 1), (o.union(i), delta - 1)]).expect("valid")],
        )?;
    let edge = Constraint::from_lines(&[Line::new(vec![(o, 1), (i, 1)]).expect("valid")])?;
    Problem::new(alphabet, node, edge)
}

/// Result of the fixed-point check.
#[derive(Debug, Clone)]
pub struct FixedPointReport {
    /// The degree checked.
    pub delta: u32,
    /// Whether `R̄(R(SO))`, restricted to used labels, is isomorphic to SO.
    pub is_fixed_point: bool,
    /// Label counts along the way: `(|Σ_SO|, |Σ_R(SO)|, |Σ_R̄(R(SO))|)`.
    pub label_counts: (usize, usize, usize),
}

/// Checks whether sinkless orientation is a fixed point of `R̄(R(·))` at
/// degree Δ.
///
/// # Errors
///
/// Propagates construction errors.
pub fn check_fixed_point(delta: u32) -> Result<FixedPointReport> {
    let so = sinkless_orientation(delta)?;
    let (r, rr) = rr_step(&so)?;
    let (reduced, _) = rr.problem.drop_unused_labels();
    let is_fixed_point = iso::isomorphic(&reduced, &so);
    Ok(FixedPointReport {
        delta,
        is_fixed_point,
        label_counts: (
            so.alphabet().len(),
            r.problem.alphabet().len(),
            rr.problem.alphabet().len(),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn so_shape() {
        let so = sinkless_orientation(3).unwrap();
        assert_eq!(so.alphabet().len(), 2);
        assert_eq!(so.node().len(), 1); // O I^2
        assert_eq!(so.edge().len(), 2); // OI, II
    }

    #[test]
    fn fixed_point_for_delta_3_to_5() {
        for delta in 3..=5 {
            let report = check_fixed_point(delta).unwrap();
            assert!(
                report.is_fixed_point,
                "sinkless orientation not a fixed point at delta={delta}: {report:?}"
            );
        }
    }

    #[test]
    fn strict_encoding_converges_to_fixed_point() {
        // R̄(R(·)) maps the strict-edge encoding onto the fixed-point
        // encoding in a single step.
        let strict = sinkless_orientation_strict_edges(3).unwrap();
        let (_, rr) = rr_step(&strict).unwrap();
        let (reduced, _) = rr.problem.drop_unused_labels();
        let fixed = sinkless_orientation(3).unwrap();
        assert!(iso::isomorphic(&reduced, &fixed));
    }

    #[test]
    fn so_not_zero_round_solvable() {
        let so = sinkless_orientation(3).unwrap();
        assert!(!relim_core::zeroround::solvable_deterministically(&so));
    }
}
