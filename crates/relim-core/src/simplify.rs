//! Problem simplification operations (the round-eliminator's toolbox).
//!
//! Lower-bound proofs via round elimination (paper §1.2) hinge on
//! *simplifying* the problems in the sequence: replacing a problem by a
//! relaxation (0-round solvable **from** it) that has a smaller
//! description, without making it trivially easy. This module provides the
//! standard operations:
//!
//! * [`merge_labels`] — map one label onto another everywhere (a
//!   relaxation: any solution converts by renaming);
//! * [`remove_label`] — delete every configuration using a label (a
//!   restriction: the result is at most as easy);
//! * [`add_node_config`] / [`add_edge_config`] — explicit relaxations;
//! * [`remove_node_config`] / [`remove_edge_config`] — explicit
//!   restrictions;
//! * [`is_relaxation_of`] — the containment check justifying a
//!   simplification step.

use crate::config::Config;
use crate::constraint::Constraint;
use crate::error::{RelimError, Result};
use crate::label::Label;
use crate::problem::Problem;

/// Merges label `from` into label `to`: every occurrence of `from` in both
/// constraints is replaced by `to`, and `from` is dropped from the
/// alphabet.
///
/// The result is a **relaxation** of `p` under the output map
/// `from ↦ to`: any solution of `p` becomes a solution of the result in 0
/// rounds.
///
/// # Errors
///
/// Requires `from ≠ to`, both within the alphabet.
///
/// # Example
///
/// ```
/// use relim_core::{simplify, Problem};
///
/// let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
/// let p = mis.alphabet().label("P").unwrap();
/// let o = mis.alphabet().label("O").unwrap();
/// let merged = simplify::merge_labels(&mis, p, o).unwrap();
/// assert_eq!(merged.alphabet().len(), 2);
/// // P O O became O O O.
/// assert_eq!(merged.node().len(), 2);
/// ```
pub fn merge_labels(p: &Problem, from: Label, to: Label) -> Result<Problem> {
    let n = p.alphabet().len();
    if from == to || from.index() >= n || to.index() >= n {
        return Err(RelimError::InvalidParameter {
            message: format!("merge_labels requires distinct in-range labels, got {from} -> {to}"),
        });
    }
    let mapping: Vec<Label> =
        (0..n).map(|i| if i == from.index() { to } else { Label::new(i as u8) }).collect();
    let node = p.node().map_labels(&mapping);
    let edge = p.edge().map_labels(&mapping);
    let merged = Problem::new(p.alphabet().clone(), node, edge)?;
    let (reduced, _) = merged.drop_unused_labels();
    Ok(reduced)
}

/// Removes a label: every configuration mentioning it is deleted from both
/// constraints. The result is a **restriction** of `p` (at most as easy).
///
/// # Errors
///
/// Returns [`RelimError::DegenerateProblem`] if a constraint would become
/// empty.
pub fn remove_label(p: &Problem, label: Label) -> Result<Problem> {
    let filter = |c: &Constraint| -> Result<Constraint> {
        let kept: Vec<Config> = c.iter().filter(|cfg| !cfg.contains(label)).cloned().collect();
        Constraint::from_configs(kept).map_err(|_| RelimError::DegenerateProblem {
            message: format!("removing label {label} empties a constraint"),
        })
    };
    let node = filter(p.node())?;
    let edge = filter(p.edge())?;
    let stripped = Problem::new(p.alphabet().clone(), node, edge)?;
    let (reduced, _) = stripped.drop_unused_labels();
    Ok(reduced)
}

/// Adds a node configuration (a relaxation).
///
/// # Errors
///
/// The configuration must have degree Δ and in-range labels.
pub fn add_node_config(p: &Problem, cfg: Config) -> Result<Problem> {
    if cfg.degree() != p.delta() {
        return Err(RelimError::WrongDegree { expected: p.delta(), found: cfg.degree() });
    }
    let node = Constraint::from_configs(p.node().iter().cloned().chain([cfg]))?;
    Problem::new(p.alphabet().clone(), node, p.edge().clone())
}

/// Adds an edge configuration (a relaxation).
///
/// # Errors
///
/// The configuration must have degree 2 and in-range labels.
pub fn add_edge_config(p: &Problem, cfg: Config) -> Result<Problem> {
    if cfg.degree() != 2 {
        return Err(RelimError::WrongDegree { expected: 2, found: cfg.degree() });
    }
    let edge = Constraint::from_configs(p.edge().iter().cloned().chain([cfg]))?;
    Problem::new(p.alphabet().clone(), p.node().clone(), edge)
}

/// Removes a node configuration (a restriction).
///
/// # Errors
///
/// Returns [`RelimError::DegenerateProblem`] if it was the last one.
pub fn remove_node_config(p: &Problem, cfg: &Config) -> Result<Problem> {
    let kept: Vec<Config> = p.node().iter().filter(|c| *c != cfg).cloned().collect();
    let node = Constraint::from_configs(kept).map_err(|_| RelimError::DegenerateProblem {
        message: "removing the last node configuration".into(),
    })?;
    Problem::new(p.alphabet().clone(), node, p.edge().clone())
}

/// Removes an edge configuration (a restriction).
///
/// # Errors
///
/// Returns [`RelimError::DegenerateProblem`] if it was the last one.
pub fn remove_edge_config(p: &Problem, cfg: &Config) -> Result<Problem> {
    let kept: Vec<Config> = p.edge().iter().filter(|c| *c != cfg).cloned().collect();
    let edge = Constraint::from_configs(kept).map_err(|_| RelimError::DegenerateProblem {
        message: "removing the last edge configuration".into(),
    })?;
    Problem::new(p.alphabet().clone(), p.node().clone(), edge)
}

/// Whether `easier` is a relaxation of `harder` **over the same alphabet**:
/// every configuration allowed by `harder` is allowed by `easier` (so any
/// `harder`-solution is an `easier`-solution verbatim).
pub fn is_relaxation_of(easier: &Problem, harder: &Problem) -> bool {
    easier.alphabet().len() == harder.alphabet().len()
        && harder.node().iter().all(|c| easier.node().contains(c))
        && harder.edge().iter().all(|c| easier.edge().contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mis3() -> Problem {
        Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap()
    }

    #[test]
    fn merge_p_into_o() {
        let p = mis3();
        let pl = p.alphabet().label("P").unwrap();
        let o = p.alphabet().label("O").unwrap();
        let merged = merge_labels(&p, pl, o).unwrap();
        assert_eq!(merged.alphabet().len(), 2);
        // Node: {MMM, OOO}; edge: {MO, OO}.
        assert_eq!(merged.node().len(), 2);
        assert_eq!(merged.edge().len(), 2);
    }

    #[test]
    fn merge_validates() {
        let p = mis3();
        let m = p.alphabet().label("M").unwrap();
        assert!(merge_labels(&p, m, m).is_err());
    }

    #[test]
    fn remove_label_m() {
        let p = mis3();
        let m = p.alphabet().label("M").unwrap();
        // Node keeps only P O O; edge keeps only OO.
        let stripped = remove_label(&p, m).unwrap();
        assert_eq!(stripped.node().len(), 1);
        assert_eq!(stripped.edge().len(), 1);
        assert_eq!(stripped.alphabet().len(), 2);
    }

    #[test]
    fn remove_label_degenerate() {
        let p = Problem::from_text("A A", "A A").unwrap();
        let a = p.alphabet().label("A").unwrap();
        assert!(matches!(remove_label(&p, a), Err(RelimError::DegenerateProblem { .. })));
    }

    #[test]
    fn add_and_remove_configs() {
        let p = mis3();
        let m = p.alphabet().label("M").unwrap();
        let o = p.alphabet().label("O").unwrap();
        let mm = Config::new(vec![m, m]);
        let relaxed = add_edge_config(&p, mm.clone()).unwrap();
        assert!(relaxed.edge().contains(&mm));
        assert!(is_relaxation_of(&relaxed, &p));
        assert!(!is_relaxation_of(&p, &relaxed));
        let back = remove_edge_config(&relaxed, &mm).unwrap();
        assert!(back.semantically_equal(&p));
        // Node config round trip.
        let ooo = Config::new(vec![o, o, o]);
        let relaxed = add_node_config(&p, ooo.clone()).unwrap();
        assert!(is_relaxation_of(&relaxed, &p));
        let back = remove_node_config(&relaxed, &ooo).unwrap();
        assert!(back.semantically_equal(&p));
    }

    #[test]
    fn degree_validation() {
        let p = mis3();
        let m = p.alphabet().label("M").unwrap();
        assert!(add_node_config(&p, Config::new(vec![m])).is_err());
        assert!(add_edge_config(&p, Config::new(vec![m, m, m])).is_err());
    }

    #[test]
    fn merged_problem_is_relaxation_via_renaming() {
        // Merging is a relaxation in the renamed sense: map solutions of
        // MIS through P ↦ O and they satisfy the merged problem. We check
        // the constraint-level fact: image(N_MIS) ⊆ N_merged.
        let p = mis3();
        let pl = p.alphabet().label("P").unwrap();
        let o = p.alphabet().label("O").unwrap();
        let merged = merge_labels(&p, pl, o).unwrap();
        let mapping: Vec<Label> = vec![
            merged.alphabet().label("M").unwrap(),
            merged.alphabet().label("O").unwrap(), // P -> O
            merged.alphabet().label("O").unwrap(),
        ];
        for cfg in p.node().iter() {
            assert!(merged.node().contains(&cfg.map_labels(&mapping)));
        }
        for cfg in p.edge().iter() {
            assert!(merged.edge().contains(&cfg.map_labels(&mapping)));
        }
    }
}
