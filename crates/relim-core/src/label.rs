//! Labels and alphabets.
//!
//! A [`Label`] is an index into an [`Alphabet`], which owns the human-readable
//! names. The engine supports at most 31 labels so that sets of labels fit in
//! a `u32` bitmask ([`crate::LabelSet`]).

use crate::error::{RelimError, Result};
use std::fmt;

/// Maximum number of labels an [`Alphabet`] may hold.
///
/// Label sets are represented as `u32` bitmasks, and one bit is reserved so
/// that iteration helpers never overflow.
pub const MAX_LABELS: usize = 31;

/// A label of a locally checkable problem, represented as an index into an
/// [`Alphabet`].
///
/// # Example
///
/// ```
/// use relim_core::{Alphabet, Label};
///
/// let alpha = Alphabet::new(&["M", "P", "O"]).unwrap();
/// let m = alpha.label("M").unwrap();
/// assert_eq!(m, Label::new(0));
/// assert_eq!(alpha.name(m), "M");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u8);

impl Label {
    /// Creates a label from its raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 31`; labels beyond [`MAX_LABELS`] are unsupported.
    pub fn new(index: u8) -> Self {
        assert!((index as usize) < MAX_LABELS, "label index {index} exceeds MAX_LABELS");
        Label(index)
    }

    /// The raw index of this label within its alphabet.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as `u8`.
    pub fn raw(self) -> u8 {
        self.0
    }
}

/// The default label is index 0 — the filler value for the unused tail of
/// inline [`crate::inline_vec::InlineVec`] buffers (never observed through
/// the slice views).
impl Default for Label {
    fn default() -> Self {
        Label(0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An interned set of label names.
///
/// Alphabets are immutable after construction; constraints and problems refer
/// to labels by [`Label`] index.
///
/// # Example
///
/// ```
/// use relim_core::Alphabet;
///
/// let alpha = Alphabet::new(&["M", "P", "O", "A", "X"]).unwrap();
/// assert_eq!(alpha.len(), 5);
/// assert_eq!(alpha.name(alpha.label("A").unwrap()), "A");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Alphabet {
    names: Vec<String>,
}

impl Alphabet {
    /// Creates an alphabet from a list of distinct names.
    ///
    /// # Errors
    ///
    /// Returns [`RelimError::TooManyLabels`] if more than 31 names are given
    /// and [`RelimError::DuplicateLabel`] if a name repeats.
    pub fn new<S: AsRef<str>>(names: &[S]) -> Result<Self> {
        if names.len() > MAX_LABELS {
            return Err(RelimError::TooManyLabels { requested: names.len() });
        }
        let mut seen = std::collections::HashSet::new();
        let mut owned = Vec::with_capacity(names.len());
        for n in names {
            let n = n.as_ref().to_owned();
            if !seen.insert(n.clone()) {
                return Err(RelimError::DuplicateLabel { name: n });
            }
            owned.push(n);
        }
        Ok(Alphabet { names: owned })
    }

    /// Number of labels in the alphabet.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet has no labels.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks up a label by name.
    ///
    /// # Errors
    ///
    /// Returns [`RelimError::UnknownLabel`] if the name is not interned.
    pub fn label(&self, name: &str) -> Result<Label> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Label(i as u8))
            .ok_or_else(|| RelimError::UnknownLabel { name: name.to_owned() })
    }

    /// The name of a label.
    ///
    /// # Panics
    ///
    /// Panics if the label is out of range for this alphabet.
    pub fn name(&self, label: Label) -> &str {
        &self.names[label.index()]
    }

    /// Iterates over all labels of the alphabet, in index order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.names.len()).map(|i| Label(i as u8))
    }

    /// All names, in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Whether every name is a single character (enables compact rendering
    /// of label sets such as `MPX`).
    pub fn all_single_char(&self) -> bool {
        self.names.iter().all(|n| n.chars().count() == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup() {
        let a = Alphabet::new(&["M", "P", "O"]).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.label("P").unwrap(), Label::new(1));
        assert_eq!(a.name(Label::new(2)), "O");
        assert!(a.label("Z").is_err());
    }

    #[test]
    fn duplicate_rejected() {
        let err = Alphabet::new(&["M", "M"]).unwrap_err();
        assert!(matches!(err, RelimError::DuplicateLabel { .. }));
    }

    #[test]
    fn too_many_rejected() {
        let names: Vec<String> = (0..32).map(|i| format!("L{i}")).collect();
        let err = Alphabet::new(&names).unwrap_err();
        assert!(matches!(err, RelimError::TooManyLabels { requested: 32 }));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_LABELS")]
    fn label_index_out_of_range_panics() {
        let _ = Label::new(31);
    }

    #[test]
    fn single_char_detection() {
        assert!(Alphabet::new(&["M", "X"]).unwrap().all_single_char());
        assert!(!Alphabet::new(&["M", "XY"]).unwrap().all_single_char());
    }
}
