//! Round elimination on (δ_B, δ_W)-biregular trees — the general form.
//!
//! Brandt's automatic speedup theorem \[PODC'19\] is stated for problems
//! on two-colored biregular trees: **black** nodes of degree δ_B carry
//! one constraint, **white** nodes of degree δ_W the other, and every
//! edge joins a black and a white node. The crate's [`Problem`] is the
//! (Δ, 2) special case used throughout the paper — white nodes of degree
//! 2 are the *edges* of a Δ-regular tree. This module implements the
//! operators at full generality:
//!
//! * rank-r hypergraphs (white degree r): hypergraph sinkless
//!   orientation, the Lovász-local-lemma-flavored fixed points of
//!   Brandt et al. \[STOC'16\] that the paper's §1.3 history builds on;
//! * the "dual view" of a problem (study the white side as the active
//!   one), which the round-eliminator tool exposes as a matter of course.
//!
//! [`half_step`] performs one *half* speedup: the chosen side's
//! constraint is replaced by the maximal universal configurations over
//! right-closed label sets (Observation 4 applies verbatim — it is a
//! property of one constraint), and the other side by the existential
//! replacement. Two half steps (white, then black) are one full
//! `R̄(R(·))` and lower the complexity by exactly one round on
//! high-girth biregular trees; on (Δ, 2) instances [`full_step`] agrees
//! with [`crate::roundelim::rr_step`] — differentially tested.

use crate::config::{Config, SetConfig};
use crate::constraint::Constraint;
use crate::diagram::StrengthOrder;
use crate::error::{RelimError, Result};
use crate::label::Alphabet;
use crate::labelset::LabelSet;
use crate::parse;
use crate::problem::Problem;
use crate::rightclosed::right_closed_sets;
use crate::roundelim::{derive_sides, dominance_filter, forall_multisets};

/// A locally checkable problem on (δ_B, δ_W)-biregular trees.
///
/// Both constraints live over one alphabet; `black` configurations have
/// length δ_B, `white` configurations length δ_W.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiregularProblem {
    alphabet: Alphabet,
    black: Constraint,
    white: Constraint,
}

impl BiregularProblem {
    /// Builds a validated biregular problem.
    ///
    /// # Errors
    ///
    /// Rejects constraints using labels outside the alphabet.
    pub fn new(alphabet: Alphabet, black: Constraint, white: Constraint) -> Result<Self> {
        let n = alphabet.len();
        for c in black.iter().chain(white.iter()) {
            if let Some(l) = c.iter().find(|l| l.index() >= n) {
                return Err(RelimError::LabelOutOfRange { index: l.raw(), alphabet_len: n });
            }
        }
        Ok(BiregularProblem { alphabet, black, white })
    }

    /// Parses a biregular problem from the engine's text format.
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    ///
    /// # Example
    ///
    /// ```
    /// use relim_core::biregular::BiregularProblem;
    ///
    /// // Hypergraph sinkless orientation on rank-3 hyperedges over a
    /// // 3-regular hypergraph: every (black) vertex has an outgoing
    /// // hyperedge; every (white) hyperedge is outgoing for ≤ 1 vertex.
    /// let hso = BiregularProblem::from_text("O I I", "[O I] I I").unwrap();
    /// assert_eq!(hso.degrees(), (3, 3));
    /// ```
    pub fn from_text(black_text: &str, white_text: &str) -> Result<Self> {
        let names = parse::collect_names(&[black_text, white_text])?;
        let alphabet = Alphabet::new(&names)?;
        let black = parse::parse_constraint(black_text, &alphabet)?;
        let white = parse::parse_constraint(white_text, &alphabet)?;
        BiregularProblem::new(alphabet, black, white)
    }

    /// Views a (Δ, 2) [`Problem`] as a biregular problem (black = node
    /// constraint, white = edge constraint).
    pub fn from_problem(p: &Problem) -> Self {
        BiregularProblem {
            alphabet: p.alphabet().clone(),
            black: p.node().clone(),
            white: p.edge().clone(),
        }
    }

    /// Converts back to a [`Problem`] when the white degree is 2.
    ///
    /// # Errors
    ///
    /// Returns [`RelimError::WrongDegree`] otherwise.
    pub fn to_problem(&self) -> Result<Problem> {
        if self.white.degree() != 2 {
            return Err(RelimError::WrongDegree { expected: 2, found: self.white.degree() });
        }
        Problem::new(self.alphabet.clone(), self.black.clone(), self.white.clone())
    }

    /// The problem with the two sides swapped — the dual view.
    pub fn dual(&self) -> Self {
        BiregularProblem {
            alphabet: self.alphabet.clone(),
            black: self.white.clone(),
            white: self.black.clone(),
        }
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The black (degree δ_B) constraint.
    pub fn black(&self) -> &Constraint {
        &self.black
    }

    /// The white (degree δ_W) constraint.
    pub fn white(&self) -> &Constraint {
        &self.white
    }

    /// `(δ_B, δ_W)`.
    pub fn degrees(&self) -> (u32, u32) {
        (self.black.degree(), self.white.degree())
    }

    /// Renders both constraints in the text format.
    pub fn render(&self) -> String {
        format!(
            "black (degree {}):\n{}\n\nwhite (degree {}):\n{}",
            self.black.degree(),
            self.black.display(&self.alphabet),
            self.white.degree(),
            self.white.display(&self.alphabet),
        )
    }

    /// Structural equality up to configuration order.
    pub fn semantically_equal(&self, other: &BiregularProblem) -> bool {
        self.alphabet.len() == other.alphabet.len()
            && self.black == other.black
            && self.white == other.white
    }
}

/// Which side's constraint the universal step rewrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Universal step on the black constraint (the `R̄(·)` direction of
    /// the (Δ, 2) case).
    Black,
    /// Universal step on the white constraint (the `R(·)` direction of
    /// the (Δ, 2) case).
    White,
}

/// The result of a half step: the derived problem plus the provenance of
/// each new label (the set of old labels it stands for).
#[derive(Debug, Clone)]
pub struct BiStep {
    /// The derived problem.
    pub problem: BiregularProblem,
    /// `provenance[i]` is the old-label set behind new label `i`.
    pub provenance: Vec<LabelSet>,
}

/// One half speedup step: maximal universal configurations (over
/// right-closed sets, Observation 4) on `side`, existential replacement
/// on the other side.
///
/// # Errors
///
/// Returns [`RelimError::DegenerateProblem`] when a derived constraint
/// would be empty, and [`RelimError::TooManyLabels`] past the
/// right-closed enumeration limit.
pub fn half_step(p: &BiregularProblem, side: Side) -> Result<BiStep> {
    let n = p.alphabet.len();
    if n > 22 {
        return Err(RelimError::TooManyLabels { requested: n });
    }
    let (uni_src, exist_src) = match side {
        Side::Black => (&p.black, &p.white),
        Side::White => (&p.white, &p.black),
    };
    let order = StrengthOrder::of_constraint(uni_src, n);
    let cands = right_closed_sets(&order);
    let raw = forall_multisets(&cands, uni_src.degree(), &uni_src.sub_multiset_index());
    let maximal = dominance_filter(raw);
    let derived = derive_sides(&p.alphabet, maximal, exist_src)?;
    let (black, white) = match side {
        Side::Black => (derived.universal, derived.existential),
        Side::White => (derived.existential, derived.universal),
    };
    let problem = BiregularProblem::new(derived.alphabet, black, white)?;
    Ok(BiStep { problem, provenance: derived.provenance })
}

/// One full speedup step (white half, then black half): exactly one round
/// cheaper on high-girth biregular trees. Matches
/// [`crate::roundelim::rr_step`] on (Δ, 2) problems.
///
/// # Errors
///
/// Same as [`half_step`].
pub fn full_step(p: &BiregularProblem) -> Result<(BiStep, BiStep)> {
    let w = half_step(p, Side::White)?;
    let b = half_step(&w.problem, Side::Black)?;
    Ok((w, b))
}

/// A witness that the problem is 0-round solvable by the black nodes in
/// the bare port-numbering model on biregular trees.
///
/// Every black node outputs the same configuration `C ∈ B`; a white node
/// of degree δ_W then sees an adversarial multiset of δ_W labels drawn
/// from the support of `C`, so solvability requires **every** such
/// multiset to be in `W`. For δ_W = 2 this is exactly
/// [`crate::zeroround::universal_witness`].
pub fn trivial_black(p: &BiregularProblem) -> Option<Config> {
    let w_deg = p.white.degree();
    p.black
        .iter()
        .find(|cfg| {
            let support: Vec<_> = {
                let mut s: Vec<_> = cfg.iter().collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            all_multisets_in(&support, w_deg, &p.white)
        })
        .cloned()
}

/// Whether every size-`k` multiset over `support` is a configuration of
/// `constraint`.
fn all_multisets_in(support: &[crate::label::Label], k: u32, constraint: &Constraint) -> bool {
    fn rec(
        support: &[crate::label::Label],
        start: usize,
        k: u32,
        cur: &mut Vec<crate::label::Label>,
        constraint: &Constraint,
    ) -> bool {
        if k == 0 {
            return constraint.contains(&Config::new(cur.clone()));
        }
        for (i, &l) in support.iter().enumerate().skip(start) {
            cur.push(l);
            let ok = rec(support, i, k - 1, cur, constraint);
            cur.pop();
            if !ok {
                return false;
            }
        }
        true
    }
    let mut cur = Vec::with_capacity(k as usize);
    rec(support, 0, k, &mut cur, constraint)
}

/// Converts a universal-side configuration of a [`BiStep`] back to old
/// label sets (mirror of [`crate::roundelim::Step::as_set_config`]).
pub fn as_set_config(step: &BiStep, config: &Config) -> SetConfig {
    config.iter().map(|l| step.provenance[l.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso;
    use crate::roundelim::rr_step;

    fn mis3() -> Problem {
        Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap()
    }

    #[test]
    fn full_step_matches_rr_on_delta2_problems() {
        // The biregular operators must agree with the specialized (Δ, 2)
        // pipeline on its home turf.
        for (node, edge) in [
            ("M M M\nP O O", "M [P O]\nO O"),
            ("O I I", "[O I] I"),
            ("A A\nB B", "A B"),
            ("M O", "M M\nO O"),
        ] {
            let p = Problem::from_text(node, edge).unwrap();
            let (_, rr) = rr_step(&p).unwrap();
            let bi = BiregularProblem::from_problem(&p);
            let (_, bb) = full_step(&bi).unwrap();
            let q = bb.problem.to_problem().unwrap();
            assert!(
                iso::isomorphic(&q, &rr.problem),
                "{node} / {edge}: biregular full step diverged from rr_step"
            );
        }
    }

    #[test]
    fn hypergraph_sinkless_orientation_is_fixed_point() {
        // Rank-3 hypergraph sinkless orientation on 3-regular hypergraphs:
        // the generalization of the STOC'16 fixed point. One full step
        // must reproduce the problem up to isomorphism.
        let hso = BiregularProblem::from_text("O I I", "[O I] I I").unwrap();
        let (_, step) = full_step(&hso).unwrap();
        let q = step.problem.clone();
        // Compare by rendering through Problem-style isomorphism: same
        // degrees, same alphabet size, and a label bijection matching
        // both constraints. Reuse iso by mapping through two (Δ, 2)
        // problems is impossible (white degree 3), so check structurally.
        assert_eq!(q.degrees(), hso.degrees());
        assert_eq!(q.alphabet().len(), hso.alphabet().len());
        assert_eq!(q.black().len(), hso.black().len());
        assert_eq!(q.white().len(), hso.white().len());
        // The two labels play the same roles: identify them by their
        // multiplicity pattern in the black constraint.
        let find_roles = |p: &BiregularProblem| -> (usize, usize) {
            // (configs containing the rare label once, total configs)
            let c = p.black().iter().next().unwrap().clone();
            (c.counts().len(), p.black().len())
        };
        assert_eq!(find_roles(&hso), find_roles(&q));
    }

    #[test]
    fn dual_swaps_sides() {
        let p = BiregularProblem::from_problem(&mis3());
        let d = p.dual();
        assert_eq!(d.degrees(), (2, 3));
        assert_eq!(d.black(), p.white());
        assert_eq!(d.white(), p.black());
        assert!(d.dual().semantically_equal(&p));
    }

    #[test]
    fn half_step_on_dual_mirrors_primal() {
        // Universal step on the white side of Π == universal step on the
        // black side of the dual, with the sides swapped.
        let p = BiregularProblem::from_problem(&mis3());
        let via_white = half_step(&p, Side::White).unwrap();
        let via_dual = half_step(&p.dual(), Side::Black).unwrap();
        assert!(via_white.problem.semantically_equal(&via_dual.problem.dual()));
        assert_eq!(via_white.provenance, via_dual.provenance);
    }

    #[test]
    fn trivial_black_generalizes_universal() {
        // (Δ, 2): agrees with zeroround::universal_witness.
        for (node, edge) in
            [("A A A", "A A"), ("M M M\nP O O", "M [P O]\nO O"), ("M O", "M M\nO O")]
        {
            let p = Problem::from_text(node, edge).unwrap();
            let bi = BiregularProblem::from_problem(&p);
            assert_eq!(
                trivial_black(&bi).is_some(),
                crate::zeroround::universal_witness(&p).is_some(),
                "{node} / {edge}"
            );
        }
        // Rank-3: HSO is not trivial; the all-I relaxation is.
        let hso = BiregularProblem::from_text("O I I", "[O I] I I").unwrap();
        assert!(trivial_black(&hso).is_none());
        let relaxed = BiregularProblem::from_text("I I I", "[O I] I I").unwrap();
        assert!(trivial_black(&relaxed).is_some());
    }

    #[test]
    fn to_problem_requires_white_degree_two() {
        let hso = BiregularProblem::from_text("O I I", "[O I] I I").unwrap();
        assert!(matches!(hso.to_problem(), Err(RelimError::WrongDegree { .. })));
        let p = BiregularProblem::from_problem(&mis3());
        assert!(p.to_problem().is_ok());
    }

    #[test]
    fn provenance_maps_back_to_old_labels() {
        let p = BiregularProblem::from_problem(&mis3());
        let step = half_step(&p, Side::White).unwrap();
        // Every universal-side configuration maps to sets of old labels
        // whose pairings are all in the old white constraint.
        let compat = mis3().edge_compat();
        for cfg in step.problem.white().iter() {
            let sc = as_set_config(&step, cfg);
            let s = sc.as_slice();
            for a in s[0].iter() {
                assert!(s[1].is_subset_of(compat[a.index()]));
            }
        }
    }

    #[test]
    fn rank_two_black_side_is_rbar() {
        // Black half step on a (Δ, 2) problem after the white half is the
        // classic R̄ — covered by the full-step test; here check the black
        // half *standalone* equals rbar on the R(Π) intermediate.
        let p = mis3();
        let r = crate::roundelim::r_step(&p).unwrap();
        let bi = BiregularProblem::from_problem(&r.problem);
        let direct = crate::roundelim::rbar_step(&r.problem).unwrap();
        let via_bi = half_step(&bi, Side::Black).unwrap();
        let q = via_bi.problem.to_problem().unwrap();
        assert!(iso::isomorphic(&q, &direct.problem));
    }
}
