//! Locally checkable problems: alphabet + node constraint + edge constraint.

use crate::constraint::Constraint;
use crate::error::{RelimError, Result};
use crate::label::{Alphabet, Label};
use crate::labelset::LabelSet;
use std::fmt;

/// A locally checkable problem in the round elimination formalism
/// (paper §2.2): an alphabet Σ, a node constraint `N` of degree Δ, and an
/// edge constraint `E` of degree 2.
///
/// # Example
///
/// ```
/// use relim_core::Problem;
///
/// // MIS with Δ = 3 (paper §2.2): N = {M³, PO²}, E = {M[PO], OO}.
/// let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
/// assert_eq!(mis.delta(), 3);
/// assert_eq!(mis.alphabet().len(), 3);
/// assert_eq!(mis.node().len(), 2);
/// assert_eq!(mis.edge().len(), 3); // MP, MO, OO
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    alphabet: Alphabet,
    node: Constraint,
    edge: Constraint,
}

impl Problem {
    /// Creates a problem, validating that the edge constraint has degree 2
    /// and that all labels are within the alphabet.
    ///
    /// # Errors
    ///
    /// Returns [`RelimError::WrongDegree`] if the edge constraint's degree is
    /// not 2, or [`RelimError::LabelOutOfRange`] if a constraint mentions a
    /// label outside the alphabet.
    pub fn new(alphabet: Alphabet, node: Constraint, edge: Constraint) -> Result<Self> {
        if edge.degree() != 2 {
            return Err(RelimError::WrongDegree { expected: 2, found: edge.degree() });
        }
        let full = LabelSet::full(alphabet.len());
        for (name, c) in [("node", &node), ("edge", &edge)] {
            let sup = c.support();
            if !sup.is_subset_of(full) {
                let bad = sup.difference(full).first().expect("non-empty difference");
                let _ = name;
                return Err(RelimError::LabelOutOfRange {
                    index: bad.raw(),
                    alphabet_len: alphabet.len(),
                });
            }
        }
        Ok(Problem { alphabet, node, edge })
    }

    /// Parses a problem from the text format of [`crate::parse`]: one
    /// condensed configuration per non-empty line, alphabet inferred from the
    /// order of first appearance.
    ///
    /// # Errors
    ///
    /// Propagates parse errors and validation failures.
    pub fn from_text(node_text: &str, edge_text: &str) -> Result<Self> {
        crate::parse::parse_problem(node_text, edge_text)
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The node constraint.
    pub fn node(&self) -> &Constraint {
        &self.node
    }

    /// The edge constraint.
    pub fn edge(&self) -> &Constraint {
        &self.edge
    }

    /// The degree Δ of the node constraint.
    pub fn delta(&self) -> u32 {
        self.node.degree()
    }

    /// Labels that appear in at least one constraint.
    pub fn used_labels(&self) -> LabelSet {
        self.node.support().union(self.edge.support())
    }

    /// Pairwise edge-compatibility: `compat[a]` is the set of labels `b` such
    /// that the configuration `a b` is in the edge constraint.
    pub fn edge_compat(&self) -> Vec<LabelSet> {
        let n = self.alphabet.len();
        let mut compat = vec![LabelSet::EMPTY; n];
        for cfg in self.edge.iter() {
            let s = cfg.as_slice();
            let (a, b) = (s[0], s[1]);
            compat[a.index()] = compat[a.index()].with(b);
            compat[b.index()] = compat[b.index()].with(a);
        }
        compat
    }

    /// Returns an equivalent problem whose alphabet contains only used
    /// labels, together with the mapping `old label -> new label`.
    pub fn drop_unused_labels(&self) -> (Problem, Vec<Option<Label>>) {
        let used = self.used_labels();
        let mut mapping: Vec<Option<Label>> = vec![None; self.alphabet.len()];
        let mut names = Vec::new();
        for l in used.iter() {
            mapping[l.index()] = Some(Label::new(names.len() as u8));
            names.push(self.alphabet.name(l).to_owned());
        }
        let dense: Vec<Label> = mapping.iter().map(|m| m.unwrap_or(Label::new(0))).collect();
        let alphabet = Alphabet::new(&names).expect("subset of valid alphabet");
        let node = self.node.map_labels(&dense);
        let edge = self.edge.map_labels(&dense);
        let p = Problem::new(alphabet, node, edge).expect("renaming preserves validity");
        (p, mapping)
    }

    /// Renames labels through a bijection `mapping[old] = new`, with the new
    /// alphabet supplied by the caller.
    ///
    /// # Errors
    ///
    /// Returns an error if the mapping is not a bijection onto the new
    /// alphabet's indices.
    pub fn rename(&self, mapping: &[Label], new_alphabet: Alphabet) -> Result<Problem> {
        if mapping.len() != self.alphabet.len() || new_alphabet.len() != self.alphabet.len() {
            return Err(RelimError::InvalidParameter {
                message: "rename requires a bijection between equal-size alphabets".into(),
            });
        }
        let mut seen = vec![false; new_alphabet.len()];
        for &m in mapping {
            if m.index() >= new_alphabet.len() || seen[m.index()] {
                return Err(RelimError::InvalidParameter {
                    message: "rename mapping is not a bijection".into(),
                });
            }
            seen[m.index()] = true;
        }
        Problem::new(new_alphabet, self.node.map_labels(mapping), self.edge.map_labels(mapping))
    }

    /// Whether two problems are *semantically equal*: same alphabet size and
    /// identical constraint sets under the identity labeling.
    ///
    /// Use [`crate::iso::find_isomorphism`] for equality up to renaming.
    pub fn semantically_equal(&self, other: &Problem) -> bool {
        self.alphabet.len() == other.alphabet.len()
            && self.node == *other.node()
            && self.edge == *other.edge()
    }

    /// Multi-line human-readable rendering of both constraints.
    pub fn render(&self) -> String {
        format!(
            "N (degree {}):\n{}\n\nE:\n{}",
            self.delta(),
            self.node.display(&self.alphabet),
            self.edge.display(&self.alphabet),
        )
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Problem(Δ={}, |Σ|={}, |N|={}, |E|={})",
            self.delta(),
            self.alphabet.len(),
            self.node.len(),
            self.edge.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn l(i: u8) -> Label {
        Label::new(i)
    }

    fn mis3() -> Problem {
        Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap()
    }

    #[test]
    fn mis_shape() {
        let p = mis3();
        assert_eq!(p.delta(), 3);
        assert_eq!(p.node().len(), 2);
        assert_eq!(p.edge().len(), 3);
    }

    #[test]
    fn edge_degree_validated() {
        let alpha = Alphabet::new(&["A"]).unwrap();
        let c3 = Constraint::from_configs(vec![Config::new(vec![l(0), l(0), l(0)])]).unwrap();
        let err = Problem::new(alpha, c3.clone(), c3).unwrap_err();
        assert!(matches!(err, RelimError::WrongDegree { expected: 2, found: 3 }));
    }

    #[test]
    fn labels_in_range_validated() {
        let alpha = Alphabet::new(&["A"]).unwrap();
        let node = Constraint::from_configs(vec![Config::new(vec![l(0), l(1)])]).unwrap();
        let edge = Constraint::from_configs(vec![Config::new(vec![l(0), l(0)])]).unwrap();
        let err = Problem::new(alpha, node, edge).unwrap_err();
        assert!(matches!(err, RelimError::LabelOutOfRange { index: 1, .. }));
    }

    #[test]
    fn edge_compat_matrix() {
        let p = mis3();
        let a = p.alphabet();
        let (m, pp, o) = (a.label("M").unwrap(), a.label("P").unwrap(), a.label("O").unwrap());
        let compat = p.edge_compat();
        assert!(compat[m.index()].contains(pp));
        assert!(compat[m.index()].contains(o));
        assert!(!compat[m.index()].contains(m));
        assert!(compat[o.index()].contains(o));
        assert!(!compat[pp.index()].contains(pp));
        assert!(!compat[pp.index()].contains(o));
    }

    #[test]
    fn drop_unused() {
        // Alphabet has an extra unused label Z.
        let alpha = Alphabet::new(&["A", "Z", "B"]).unwrap();
        let node = Constraint::from_configs(vec![Config::new(vec![l(0), l(2)])]).unwrap();
        let edge = Constraint::from_configs(vec![Config::new(vec![l(0), l(2)])]).unwrap();
        let p = Problem::new(alpha, node, edge).unwrap();
        let (q, mapping) = p.drop_unused_labels();
        assert_eq!(q.alphabet().len(), 2);
        assert_eq!(q.alphabet().names(), &["A".to_owned(), "B".to_owned()]);
        assert!(mapping[1].is_none());
    }

    #[test]
    fn rename_roundtrip() {
        let p = mis3();
        // Swap P and O.
        let mapping = vec![l(0), l(2), l(1)];
        let new_alpha = Alphabet::new(&["M", "O", "P"]).unwrap();
        let q = p.rename(&mapping, new_alpha).unwrap();
        let back = q.rename(&mapping, p.alphabet().clone()).unwrap();
        assert!(p.semantically_equal(&back));
    }
}
