//! The stateful round-elimination session: [`Engine`].
//!
//! The automatic lower-bound machinery of the paper is one long stateful
//! computation — a round-elimination chain where every step reuses the
//! alphabet, diagram and sub-multiset structure of the last — yet the
//! crate's historical surface exposed it as stateless free functions
//! (`rr_step_with`, `iterate_rr_with`, `auto_lower_bound`, …), each taking
//! an ad-hoc [`Pool`] and rebuilding caches from scratch. The [`Engine`]
//! replaces that surface with a *session object* that owns:
//!
//! * a **persistent-pool handle** (a width policy over the process-wide
//!   worker set of `relim-pool` — the `Engine` is the one component that
//!   hands the pool to the rest of the system),
//! * a **long-lived sharded [`SubIndexCache`]** shared across *all*
//!   calls — in particular across the steps of
//!   [`Engine::auto_lower_bound`]'s merge search, across repeated
//!   [`Engine::iterate`] probes, and across *clones of the handle on
//!   other threads* (daemon executors, sweep tasks): the cache is
//!   internally sharded-and-locked, so N threads share one memo state
//!   without a session-wide mutex,
//! * the memoization toggle and default step limits, and
//! * session counters surfaced through [`EngineReport`] (cache hits,
//!   per-operator step counts, batch counts, wall time) that were
//!   previously unobservable.
//!
//! Determinism is inherited, not re-argued: every `Engine` method is
//! **byte-identical** to its free-function counterpart at any thread
//! count and any cache state, because cache hits return the same bytes a
//! rebuild would (the sub-multiset index is a pure function of the node
//! constraint) and pool results are canonically re-sorted. The
//! differential suite at the workspace root pins this.
//!
//! # Example
//!
//! ```
//! use relim_core::engine::Engine;
//! use relim_core::Problem;
//!
//! let engine = Engine::builder().threads(2).build();
//! let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
//!
//! // One full R̄(R(·)) application through the session.
//! let (_r, rr) = engine.rr_step(&mis).unwrap();
//! assert!(rr.problem.alphabet().len() >= 3);
//!
//! // The session observed the work and the cache traffic.
//! let report = engine.report();
//! assert_eq!((report.r_steps, report.rbar_steps), (1, 1));
//! assert_eq!(report.cache_hits + report.cache_misses, 1);
//! ```
#![deny(missing_docs)]

use crate::autolb::{self, AutoLbOptions, AutoLbOutcome};
use crate::autoub::{self, AutoUbOptions, AutoUbOutcome};
use crate::config::SetConfig;
use crate::constraint::{Constraint, SubMultisetIndex};
use crate::error::{RelimError, Result};
use crate::iterate::{self, IterationOutcome, SubIndexCache};
use crate::lineage::LineageGraph;
use crate::problem::Problem;
use crate::roundelim::{self, Step, MAX_LABELS};
use relim_pool::Pool;
pub use relim_pool::{parse_threads, ThreadsEnvError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Builder for an [`Engine`] session.
///
/// ```
/// use relim_core::engine::Engine;
///
/// let engine = Engine::builder()
///     .threads(4)            // pool width (0 = available parallelism)
///     .cache_capacity(128)   // sub-multiset index cache bound
///     .memoize(true)         // share indices across steps (default)
///     .max_steps(6)          // default iteration step limit
///     .label_limit(20)       // default iteration label limit
///     .build();
/// assert_eq!(engine.threads(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    threads: usize,
    cache_capacity: usize,
    cache_shards: usize,
    memoize: bool,
    max_steps: usize,
    label_limit: usize,
    record_lineage: bool,
}

impl EngineBuilder {
    /// Pool width the session shards over; `0` (the default) means
    /// [`Pool::available_parallelism`]. Output never depends on this —
    /// only wall clock does.
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.threads = threads;
        self
    }

    /// Bound on the number of distinct node constraints the session's
    /// [`SubIndexCache`] holds (default 64; clamped to at least 1).
    pub fn cache_capacity(mut self, capacity: usize) -> EngineBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// Number of independently-locked shards the session's
    /// [`SubIndexCache`] is split into (default 8; clamped to at least
    /// 1). More shards reduce lock contention when many threads share
    /// one session; output bytes never depend on this — the index is a
    /// pure function of the constraint.
    pub fn cache_shards(mut self, shards: usize) -> EngineBuilder {
        self.cache_shards = shards;
        self
    }

    /// Whether `R̄` steps serve their sub-multiset index from the session
    /// cache (default `true`). Turning memoization off rebuilds the index
    /// on every step — byte-identical output, strictly more work; the
    /// differential suite uses it as the reference configuration.
    pub fn memoize(mut self, memoize: bool) -> EngineBuilder {
        self.memoize = memoize;
        self
    }

    /// Default maximum number of `R̄(R(·))` applications for
    /// [`Engine::iterate`] (default 8).
    pub fn max_steps(mut self, max_steps: usize) -> EngineBuilder {
        self.max_steps = max_steps;
        self
    }

    /// Default alphabet-size abort threshold for [`Engine::iterate`]
    /// (default 20).
    pub fn label_limit(mut self, label_limit: usize) -> EngineBuilder {
        self.label_limit = label_limit;
        self
    }

    /// Whether the session records its derivation DAG (default `false`).
    /// When on, [`Engine::iterate`], [`Engine::auto_lower_bound`] and
    /// [`Engine::auto_upper_bound`] intern every intermediate problem and
    /// operator application into a [`LineageGraph`] retrievable through
    /// [`Engine::lineage`]. Recording digests every intermediate problem
    /// (one render + hash per node plus one reduction per step), so it is
    /// opt-in: with the flag off the drivers skip a single `Option` check
    /// and allocate nothing — the bench alloc-gate budgets assume the off
    /// path.
    pub fn record_lineage(mut self, record: bool) -> EngineBuilder {
        self.record_lineage = record;
        self
    }

    /// Builds the session. Cheap: no threads are spawned until the first
    /// parallel batch reaches the process-wide worker set.
    pub fn build(self) -> Engine {
        Engine {
            shared: Arc::new(EngineShared {
                pool: Pool::new(self.threads),
                memoize: self.memoize,
                cache_capacity: self.cache_capacity,
                cache: SubIndexCache::sharded(self.cache_shards, self.cache_capacity),
                uncached_builds: AtomicU64::new(0),
                r_steps: AtomicU64::new(0),
                rbar_steps: AtomicU64::new(0),
                dominance_filters: AtomicU64::new(0),
                iterate_runs: AtomicU64::new(0),
                autolb_runs: AtomicU64::new(0),
                autoub_runs: AtomicU64::new(0),
                map_batches: AtomicU64::new(0),
                wall_ns: AtomicU64::new(0),
                max_steps: self.max_steps,
                label_limit: self.label_limit,
                lineage: if self.record_lineage {
                    Some(Mutex::new(LineageGraph::new()))
                } else {
                    None
                },
            }),
        }
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            threads: 0,
            cache_capacity: 64,
            cache_shards: 8,
            memoize: true,
            max_steps: 8,
            label_limit: 20,
            record_lineage: false,
        }
    }
}

/// The shared state behind a (cheaply clonable) [`Engine`] handle.
struct EngineShared {
    pool: Pool,
    memoize: bool,
    cache_capacity: usize,
    /// The sharded concurrent sub-multiset index cache — `&self` API, so
    /// N clones of the handle (daemon executors, sweep tasks) share one
    /// memo state with per-shard locking instead of a session-wide mutex.
    cache: SubIndexCache,
    /// Index builds performed with memoization off (counted as misses in
    /// the report, since the cache never saw them).
    uncached_builds: AtomicU64,
    r_steps: AtomicU64,
    rbar_steps: AtomicU64,
    dominance_filters: AtomicU64,
    iterate_runs: AtomicU64,
    autolb_runs: AtomicU64,
    autoub_runs: AtomicU64,
    map_batches: AtomicU64,
    wall_ns: AtomicU64,
    max_steps: usize,
    label_limit: usize,
    /// The derivation DAG, recorded only when the session was built with
    /// [`EngineBuilder::record_lineage`] — `None` keeps the hot loop
    /// allocation-free (a single branch per step, no lock, no digest).
    lineage: Option<Mutex<LineageGraph>>,
}

/// A stateful round-elimination session.
///
/// Construction is through [`Engine::builder`] (or the [`Engine::sequential`]
/// / [`Engine::from_env`] shorthands). The handle is cheap to clone
/// (`Arc`-shared state) and `Send + Sync`, so it can travel into the
/// `'static` task closures of [`Engine::map_owned`] — sweeps shard their
/// parameter points over the session while each point's engine calls share
/// the same cache underneath.
///
/// Every method is byte-identical to its sequential free-function
/// reference (`roundelim::rr_step`, `iterate::iterate_rr_unmemoized`, …)
/// at any thread count; see the module docs.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<EngineShared>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.threads())
            .field("memoize", &self.shared.memoize)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts building a session.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// A single-threaded session: every operation runs inline on the
    /// calling thread. This is the reference schedule parallel sessions
    /// must match byte-for-byte.
    pub fn sequential() -> Engine {
        Engine::builder().threads(1).build()
    }

    /// A session sized from the `RELIM_THREADS` environment variable
    /// (available parallelism when unset), with default cache and limits.
    ///
    /// # Panics
    ///
    /// Panics when `RELIM_THREADS` is set but not a positive integer; use
    /// [`Engine::try_from_env`] to surface the error instead.
    pub fn from_env() -> Engine {
        match Engine::try_from_env() {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Engine::from_env`].
    ///
    /// # Errors
    ///
    /// Returns the [`ThreadsEnvError`] describing a malformed
    /// `RELIM_THREADS` value (`0`, empty, non-numeric).
    pub fn try_from_env() -> std::result::Result<Engine, ThreadsEnvError> {
        let pool = Pool::try_from_env()?;
        Ok(Engine::builder().threads(pool.threads()).build())
    }

    /// Number of workers this session splits parallel batches for.
    pub fn threads(&self) -> usize {
        self.shared.pool.threads()
    }

    /// Whether `R̄` steps serve their sub-multiset index from the session
    /// cache.
    pub fn memoizing(&self) -> bool {
        self.shared.memoize
    }

    /// What the standard library reports as available parallelism (at
    /// least 1). Exposed here so downstream crates need no direct
    /// `relim-pool` dependency.
    pub fn available_parallelism() -> usize {
        Pool::available_parallelism()
    }

    /// Applies `R(·)` (universal step on the edge constraint).
    ///
    /// # Errors
    ///
    /// Same as [`crate::roundelim::r_step`].
    pub fn r_step(&self, p: &Problem) -> Result<Step> {
        self.timed(|| {
            self.shared.r_steps.fetch_add(1, Ordering::Relaxed);
            roundelim::r_step(p)
        })
    }

    /// Applies `R̄(·)` (universal step on the node constraint), sharding
    /// the enumeration and dominance filter over the session pool and
    /// serving the sub-multiset index from the session cache.
    ///
    /// # Errors
    ///
    /// Same as [`crate::roundelim::rbar_step`].
    pub fn rbar_step(&self, p: &Problem) -> Result<Step> {
        self.timed(|| self.rbar_step_inner(p))
    }

    /// One full `Π ↦ R̄(R(Π))` application, returning both intermediate
    /// steps.
    ///
    /// # Errors
    ///
    /// Same as [`crate::roundelim::rr_step`].
    pub fn rr_step(&self, p: &Problem) -> Result<(Step, Step)> {
        self.timed(|| self.rr_step_inner(p))
    }

    /// Removes dominated configurations (see
    /// [`crate::roundelim::dominance_filter`]), sharding the maximality
    /// checks over the session pool.
    pub fn dominance_filter(&self, configs: Vec<SetConfig>) -> Vec<SetConfig> {
        self.timed(|| {
            self.shared.dominance_filters.fetch_add(1, Ordering::Relaxed);
            roundelim::dominance_filter_pooled(configs, &self.shared.pool)
        })
    }

    /// Iterates `R̄(R(·))` with the session's default step and label
    /// limits (see [`EngineBuilder::max_steps`] /
    /// [`EngineBuilder::label_limit`]).
    pub fn iterate(&self, p: &Problem) -> IterationOutcome {
        self.iterate_with_limits(p, self.shared.max_steps, self.shared.label_limit)
    }

    /// Iterates `R̄(R(·))` from `p`, up to `max_steps` applications,
    /// aborting before any step whose input alphabet exceeds
    /// `label_limit`. Consecutive (and repeated) searches share the
    /// session cache.
    pub fn iterate_with_limits(
        &self,
        p: &Problem,
        max_steps: usize,
        label_limit: usize,
    ) -> IterationOutcome {
        self.timed(|| {
            self.shared.iterate_runs.fetch_add(1, Ordering::Relaxed);
            self.record_lineage_root(p);
            iterate::iterate_with_step(p, max_steps, label_limit, |prev| self.traced_rr_step(prev))
        })
    }

    /// Runs the automatic lower-bound search (see [`crate::autolb`]) with
    /// every `R̄(R(·))` application served by this session — all steps of
    /// the merge search share the one [`SubIndexCache`], which
    /// [`EngineReport::cache_hits`] makes observable.
    pub fn auto_lower_bound(&self, p: &Problem, opts: &AutoLbOptions) -> AutoLbOutcome {
        self.timed(|| {
            self.shared.autolb_runs.fetch_add(1, Ordering::Relaxed);
            self.record_lineage_root(p);
            let outcome =
                autolb::auto_lower_bound_with_step(p, opts, |prev| self.traced_rr_step(prev));
            if let Some(lineage) = &self.shared.lineage {
                let mut graph = lineage.lock().expect("lineage lock");
                for step in &outcome.steps {
                    graph.record_merge(&step.raw, &step.problem, &step.merges);
                }
            }
            outcome
        })
    }

    /// Runs the automatic upper-bound search (see [`crate::autoub`]) with
    /// every `R̄(R(·))` application served by this session.
    pub fn auto_upper_bound(&self, p: &Problem, opts: &AutoUbOptions) -> AutoUbOutcome {
        self.timed(|| {
            self.shared.autoub_runs.fetch_add(1, Ordering::Relaxed);
            self.record_lineage_root(p);
            let outcome =
                autoub::auto_upper_bound_with_step(p, opts, |prev| self.traced_rr_step(prev));
            if let Some(lineage) = &self.shared.lineage {
                let mut graph = lineage.lock().expect("lineage lock");
                for step in &outcome.steps {
                    graph.record_harden(&step.raw, &step.problem, &step.removals);
                }
            }
            outcome
        })
    }

    /// Applies `f` to every owned item over the session pool, returning
    /// results in input order at any thread count. This is how sweeps and
    /// bench grids shard work while keeping the `Engine` the only
    /// consumer of the underlying pool crate: clone the handle into the
    /// closure and call back into the session from inside the tasks
    /// (nested parallelism degrades to inline execution, never deadlocks).
    pub fn map_owned<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        self.shared.map_batches.fetch_add(1, Ordering::Relaxed);
        self.shared.pool.map_owned(items, f)
    }

    /// Fallible [`Engine::map_owned`]: the collected successes, or the
    /// error of the earliest failing item (deterministic at any thread
    /// count).
    ///
    /// # Errors
    ///
    /// The error produced by the lowest-indexed failing item.
    pub fn try_map_owned<T, R, E, F>(&self, items: Vec<T>, f: F) -> std::result::Result<Vec<R>, E>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        E: Send + 'static,
        F: Fn(&T) -> std::result::Result<R, E> + Send + Sync + 'static,
    {
        self.shared.map_batches.fetch_add(1, Ordering::Relaxed);
        self.shared.pool.try_map_owned(items, f)
    }

    /// A snapshot of the session counters.
    ///
    /// ```
    /// use relim_core::engine::Engine;
    /// use relim_core::Problem;
    ///
    /// // Sinkless orientation is a fixed point: a repeated probe of the
    /// // same problem recomputes the same R(Π) node constraint, so the
    /// // session cache scores a hit the stateless API could never have.
    /// let engine = Engine::sequential();
    /// let so = Problem::from_text("O I I", "[O I] I").unwrap();
    /// assert!(engine.iterate_with_limits(&so, 5, 20).reached_fixed_point());
    /// assert!(engine.iterate_with_limits(&so, 5, 20).reached_fixed_point());
    /// let report = engine.report();
    /// assert_eq!(report.cache_misses, 1, "second search rebuilt nothing");
    /// assert_eq!(report.cache_hits, 1);
    /// ```
    pub fn report(&self) -> EngineReport {
        let cache = &self.shared.cache;
        let uncached = self.shared.uncached_builds.load(Ordering::Relaxed);
        let (lineage_nodes, lineage_edges) = match &self.shared.lineage {
            None => (0, 0),
            Some(m) => {
                let graph = m.lock().expect("lineage lock");
                (graph.node_count() as u64, graph.edge_count() as u64)
            }
        };
        EngineReport {
            threads: self.threads(),
            memoize: self.shared.memoize,
            cache_hits: cache.hits(),
            cache_misses: cache.misses() + uncached,
            cache_entries: cache.len(),
            cache_capacity: self.shared.cache_capacity.max(1),
            cache_shards: cache.shard_count(),
            r_steps: self.shared.r_steps.load(Ordering::Relaxed),
            rbar_steps: self.shared.rbar_steps.load(Ordering::Relaxed),
            dominance_filters: self.shared.dominance_filters.load(Ordering::Relaxed),
            iterate_runs: self.shared.iterate_runs.load(Ordering::Relaxed),
            autolb_runs: self.shared.autolb_runs.load(Ordering::Relaxed),
            autoub_runs: self.shared.autoub_runs.load(Ordering::Relaxed),
            map_batches: self.shared.map_batches.load(Ordering::Relaxed),
            wall_ns: self.shared.wall_ns.load(Ordering::Relaxed),
            record_lineage: self.shared.lineage.is_some(),
            lineage_nodes,
            lineage_edges,
        }
    }

    /// Times one public entry point into the session wall-clock counter.
    fn timed<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.shared.wall_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// The sub-multiset index of `constraint`: from the session cache when
    /// memoizing (hit or build-and-insert), a fresh build otherwise. A hit
    /// is byte-identical to a rebuild — the index is a pure function of
    /// the constraint.
    fn cached_index(&self, constraint: &Constraint) -> Arc<SubMultisetIndex> {
        if !self.shared.memoize {
            self.shared.uncached_builds.fetch_add(1, Ordering::Relaxed);
            return Arc::new(constraint.sub_multiset_index());
        }
        if let Some(index) = self.shared.cache.lookup(constraint) {
            return index;
        }
        // Build outside the shard lock so concurrent sweep points and
        // daemon executors do not serialize on each other's enumeration
        // work; a racing duplicate build inserts the same bytes.
        let index = Arc::new(constraint.sub_multiset_index());
        self.shared.cache.insert(constraint.clone(), Arc::clone(&index));
        index
    }

    /// `R̄(·)` through the session cache, without the entry-point timer
    /// (shared by the step drivers so wall time is not double counted).
    fn rbar_step_inner(&self, p: &Problem) -> Result<Step> {
        let n = p.alphabet().len();
        if n > MAX_LABELS {
            return Err(RelimError::TooManyLabels { requested: n });
        }
        self.shared.rbar_steps.fetch_add(1, Ordering::Relaxed);
        let index = self.cached_index(p.node());
        roundelim::rbar_step_indexed(p, &index, &self.shared.pool)
    }

    /// `R̄(R(·))` through the session cache, without the entry-point timer.
    fn rr_step_inner(&self, p: &Problem) -> Result<(Step, Step)> {
        self.shared.r_steps.fetch_add(1, Ordering::Relaxed);
        let r = roundelim::r_step(p)?;
        let rr = self.rbar_step_inner(&r.problem)?;
        Ok((r, rr))
    }

    /// [`Engine::rr_step_inner`] plus lineage recording — the step
    /// closure handed to the iterate/autolb/autoub drivers. With
    /// recording off this is one branch on a `None`; nothing else.
    fn traced_rr_step(&self, p: &Problem) -> Result<(Step, Step)> {
        let result = self.rr_step_inner(p);
        if let Some(lineage) = &self.shared.lineage {
            if let Ok((r, rr)) = &result {
                lineage.lock().expect("lineage lock").record_rr_step(p, &r.problem, &rr.problem);
            }
        }
        result
    }

    /// Records the initial chain element of a driver run (the input with
    /// unused labels dropped — exactly what the driver loops start from).
    fn record_lineage_root(&self, p: &Problem) {
        if let Some(lineage) = &self.shared.lineage {
            let (initial, _) = p.drop_unused_labels();
            lineage.lock().expect("lineage lock").record_root(&initial);
        }
    }

    /// Whether this session records its derivation DAG (see
    /// [`EngineBuilder::record_lineage`]).
    pub fn recording_lineage(&self) -> bool {
        self.shared.lineage.is_some()
    }

    /// A snapshot of the recorded derivation DAG, or `None` when the
    /// session was built without [`EngineBuilder::record_lineage`].
    ///
    /// ```
    /// use relim_core::engine::Engine;
    /// use relim_core::Problem;
    ///
    /// let engine = Engine::builder().threads(1).record_lineage(true).build();
    /// let so = Problem::from_text("O I I", "[O I] I").unwrap();
    /// engine.iterate_with_limits(&so, 5, 20);
    /// let lineage = engine.lineage().expect("recording was enabled");
    /// assert!(lineage.node_count() >= 3);
    /// assert!(Engine::sequential().lineage().is_none(), "off by default");
    /// ```
    pub fn lineage(&self) -> Option<LineageGraph> {
        self.shared.lineage.as_ref().map(|m| m.lock().expect("lineage lock").clone())
    }
}

/// A snapshot of an [`Engine`] session's counters — see
/// [`Engine::report`].
///
/// Counts are cumulative since construction. `cache_hits`/`cache_misses`
/// cover every sub-multiset index lookup the session performed (with
/// memoization off, every build counts as a miss); the remaining counters
/// record how many times each operator ran. `wall_ns` is the total wall
/// time spent inside the session's round-elimination operators (steps,
/// iterations, bound searches, dominance filters) — the generic
/// [`Engine::map_owned`] passthrough is *not* timed, because its tasks
/// routinely call back into those operators and would double-count.
/// Unlike every other field `wall_ns` is schedule-dependent, so tests
/// must not compare it.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Pool width of the session.
    pub threads: usize,
    /// Whether the session memoizes sub-multiset indices.
    pub memoize: bool,
    /// Index lookups answered from the session cache.
    pub cache_hits: u64,
    /// Index lookups that had to build (including memoization-off builds).
    pub cache_misses: u64,
    /// Distinct constraints currently held by the cache.
    pub cache_entries: usize,
    /// Configured cache bound.
    pub cache_capacity: usize,
    /// Number of independently-locked cache shards (see
    /// [`EngineBuilder::cache_shards`]).
    pub cache_shards: usize,
    /// `R(·)` applications (including those inside `rr_step`, iterations
    /// and bound searches).
    pub r_steps: u64,
    /// `R̄(·)` applications.
    pub rbar_steps: u64,
    /// Stand-alone dominance filter calls.
    pub dominance_filters: u64,
    /// [`Engine::iterate`] / [`Engine::iterate_with_limits`] runs.
    pub iterate_runs: u64,
    /// [`Engine::auto_lower_bound`] runs.
    pub autolb_runs: u64,
    /// [`Engine::auto_upper_bound`] runs.
    pub autoub_runs: u64,
    /// Parallel batches submitted through [`Engine::map_owned`] /
    /// [`Engine::try_map_owned`] (sweep points, Monte-Carlo chunks, bench
    /// grids).
    pub map_batches: u64,
    /// Total wall time (nanoseconds) spent inside the session's
    /// round-elimination operators (not the `map_owned` passthroughs —
    /// their tasks call back into the operators, which would double
    /// count). Schedule-dependent — never byte-stable across runs.
    pub wall_ns: u64,
    /// Whether the session records its derivation DAG (see
    /// [`EngineBuilder::record_lineage`]) — a configuration echo, like
    /// `threads`/`memoize`.
    pub record_lineage: bool,
    /// Distinct problems in the recorded [`LineageGraph`] (0 with
    /// recording off). Deliberately *not* part of
    /// [`EngineReport::snapshot_pairs`]: the bench baseline schema pins
    /// that list, and every committed kernel records with lineage off.
    pub lineage_nodes: u64,
    /// Operator applications in the recorded [`LineageGraph`] (0 with
    /// recording off); see `lineage_nodes` for why it is not a snapshot
    /// pair.
    pub lineage_edges: u64,
}

impl EngineReport {
    /// The **deterministic** counters of this report as stable
    /// `(name, value)` pairs, in a fixed order — the serializable
    /// snapshot persisted into `BENCH_relim.json` kernels so CI diffs
    /// cache-hit trends exactly, not just timings.
    ///
    /// Deliberately excludes `wall_ns` (schedule-dependent) and the
    /// configuration fields (`threads`, `memoize`, `cache_capacity`,
    /// `cache_shards` — inputs, not observations). For a fixed workload on a fixed
    /// session configuration, every pair is byte-stable across runs,
    /// thread counts and machines.
    ///
    /// ```
    /// use relim_core::engine::Engine;
    /// use relim_core::Problem;
    ///
    /// let engine = Engine::sequential();
    /// engine.rr_step(&Problem::from_text("A A", "A A").unwrap()).unwrap();
    /// let pairs = engine.report().snapshot_pairs();
    /// assert_eq!(pairs[0], ("cache_hits", 0));
    /// assert!(pairs.iter().any(|&(k, v)| k == "rbar_steps" && v == 1));
    /// ```
    pub fn snapshot_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_entries", self.cache_entries as u64),
            ("r_steps", self.r_steps),
            ("rbar_steps", self.rbar_steps),
            ("dominance_filters", self.dominance_filters),
            ("iterate_runs", self.iterate_runs),
            ("autolb_runs", self.autolb_runs),
            ("autoub_runs", self.autoub_runs),
            ("map_batches", self.map_batches),
        ]
    }

    /// The movement of the [`EngineReport::snapshot_pairs`] counters
    /// between `before` and this report — the engine's span seam: the
    /// serving layer snapshots a report around a job's compute and
    /// attaches the deltas to that job's trace span, giving "what did
    /// the engine do for *this* request" without touching the engine's
    /// hot path. Saturating, because `cache_entries` is a point-in-time
    /// reading that can shrink between the two reports (evictions), and
    /// on a shared engine concurrent jobs move the counters too — the
    /// deltas are attributed, not exact, under concurrency.
    ///
    /// ```
    /// use relim_core::engine::Engine;
    /// use relim_core::Problem;
    ///
    /// let engine = Engine::sequential();
    /// let before = engine.report();
    /// engine.rr_step(&Problem::from_text("A A", "A A").unwrap()).unwrap();
    /// let delta = engine.report().delta_pairs(&before);
    /// assert!(delta.iter().any(|&(k, v)| k == "rbar_steps" && v == 1));
    /// ```
    pub fn delta_pairs(&self, before: &EngineReport) -> Vec<(&'static str, u64)> {
        self.snapshot_pairs()
            .into_iter()
            .zip(before.snapshot_pairs())
            .map(|((name, after), (_, before))| (name, after.saturating_sub(before)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mis3() -> Problem {
        Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap()
    }

    #[test]
    fn engine_rr_step_matches_free_functions() {
        let p = mis3();
        let free = roundelim::rr_step(&p).unwrap();
        for threads in [1, 2, 8] {
            let engine = Engine::builder().threads(threads).build();
            let (r, rr) = engine.rr_step(&p).unwrap();
            assert_eq!(r.problem.render(), free.0.problem.render(), "threads = {threads}");
            assert_eq!(rr.problem.render(), free.1.problem.render(), "threads = {threads}");
            assert_eq!(rr.provenance, free.1.provenance, "threads = {threads}");
        }
    }

    #[test]
    fn memoization_off_matches_memoization_on() {
        let p = mis3();
        let on = Engine::builder().threads(2).memoize(true).build();
        let off = Engine::builder().threads(2).memoize(false).build();
        let a = on.iterate_with_limits(&p, 3, 20);
        let b = off.iterate_with_limits(&p, 3, 20);
        let render = |o: &IterationOutcome| {
            let rendered: Vec<String> = o.problems.iter().map(Problem::render).collect();
            format!("{:?}\n{:?}\n{}", o.stats, o.stopped, rendered.join("\n---\n"))
        };
        assert_eq!(render(&a), render(&b));
        assert_eq!(on.report().cache_hits + on.report().cache_misses, off.report().cache_misses);
        assert_eq!(off.report().cache_hits, 0, "memoization off never hits");
    }

    #[test]
    fn report_counts_operators() {
        let engine = Engine::sequential();
        let p = mis3();
        engine.r_step(&p).unwrap();
        engine.rbar_step(&p).unwrap();
        engine.rr_step(&p).unwrap();
        engine.dominance_filter(Vec::new());
        let report = engine.report();
        assert_eq!(report.r_steps, 2); // r_step + the one inside rr_step
        assert_eq!(report.rbar_steps, 2);
        assert_eq!(report.dominance_filters, 1);
        assert_eq!(report.threads, 1);
        assert!(report.memoize);
    }

    #[test]
    fn fixed_point_search_hits_the_session_cache() {
        let engine = Engine::sequential();
        let so = Problem::from_text("O I I", "[O I] I").unwrap();
        assert!(engine.iterate_with_limits(&so, 5, 20).reached_fixed_point());
        // The fixed point is detected without a confirming recomputation,
        // so the first search builds exactly one index; a repeated probe
        // of the same problem is then answered from the session cache.
        assert!(engine.iterate_with_limits(&so, 5, 20).reached_fixed_point());
        let report = engine.report();
        assert_eq!(report.cache_hits, 1, "repeat search must reuse the index");
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.iterate_runs, 2);
    }

    #[test]
    fn autolb_merge_search_shares_one_cache() {
        // The session cache persists across the merge search's calls:
        // an iterate probe of sinkless orientation populates it, and the
        // auto_lower_bound run that follows computes the *same* R(Π) node
        // constraint — with the stateless API it rebuilt the index; the
        // session must hit.
        let engine = Engine::sequential();
        let so = Problem::from_text("O I I", "[O I] I").unwrap();
        engine.iterate_with_limits(&so, 1, 20);
        let misses_before = engine.report().cache_misses;
        let outcome = engine.auto_lower_bound(&so, &AutoLbOptions::default());
        assert!(outcome.unbounded());
        let report = engine.report();
        assert!(report.cache_hits >= 1, "merge search must reuse the session cache: {report:?}");
        assert_eq!(report.cache_misses, misses_before, "autolb must rebuild nothing");
        assert_eq!(report.autolb_runs, 1);

        // A second identical search is answered from cache alone.
        let before = engine.report();
        let again = engine.auto_lower_bound(&so, &AutoLbOptions::default());
        assert!(again.unbounded());
        let after = engine.report();
        assert_eq!(after.cache_misses, before.cache_misses, "repeat run must not rebuild");
        assert!(after.cache_hits > before.cache_hits);
    }

    #[test]
    fn autoub_chain_hits_the_cache_within_one_search() {
        // Sinkless orientation never becomes trivial, so the upper-bound
        // chain keeps stepping through byte-equal R(Π) node constraints:
        // steps 2 and 3 of a single search must be served from cache.
        let engine = Engine::sequential();
        let so = Problem::from_text("O I I", "[O I] I").unwrap();
        let opts = AutoUbOptions { max_steps: 3, label_budget: 20, coloring: None };
        let outcome = engine.auto_upper_bound(&so, &opts);
        assert!(outcome.bound.is_none());
        let report = engine.report();
        assert_eq!((report.cache_hits, report.cache_misses), (2, 1), "{report:?}");
        assert_eq!(report.autoub_runs, 1);
    }

    #[test]
    fn iterate_uses_builder_defaults() {
        let engine = Engine::builder().threads(1).max_steps(1).label_limit(40).build();
        let outcome = engine.iterate(&mis3());
        assert!(outcome.stats.len() <= 2, "max_steps(1) caps the iteration");
    }

    #[test]
    fn map_owned_counts_batches_and_preserves_order() {
        let engine = Engine::builder().threads(4).build();
        let got = engine.map_owned((0u64..100).collect(), |&x| x * 3);
        assert_eq!(got, (0..100).map(|x| x * 3).collect::<Vec<u64>>());
        let tried: std::result::Result<Vec<u64>, ()> =
            engine.try_map_owned((0u64..10).collect(), |&x| Ok(x));
        assert_eq!(tried.unwrap().len(), 10);
        assert_eq!(engine.report().map_batches, 2);
    }

    #[test]
    fn clones_share_the_session() {
        let engine = Engine::sequential();
        let clone = engine.clone();
        clone.rr_step(&mis3()).unwrap();
        assert_eq!(engine.report().rbar_steps, 1, "clones must observe the same counters");
    }

    #[test]
    fn env_constructors_agree_with_pool() {
        let tried = Engine::try_from_env().expect("ambient RELIM_THREADS must be valid in tests");
        assert_eq!(tried.threads(), Pool::try_from_env().unwrap().threads());
        assert_eq!(Engine::from_env().threads(), tried.threads());
        assert!(Engine::available_parallelism() >= 1);
    }
}
