//! Configurations: multisets of labels (or label sets) of fixed length.

use crate::inline_vec::InlineVec;
use crate::label::{Alphabet, Label};
use crate::labelset::LabelSet;
use std::fmt;

/// Inline capacity of a configuration: multisets of up to this many
/// elements (degree ≤ 8 — every paper instance has Δ ≤ 5) live entirely in
/// the value, with no heap allocation. Longer configurations spill to a
/// heap `Vec` transparently.
pub const INLINE_DEGREE: usize = 8;

/// A configuration: a multiset of labels of some fixed degree.
///
/// The order of elements does not matter (paper §2.2); the internal
/// representation is kept sorted so that equality and hashing are canonical.
/// Storage is inline up to [`INLINE_DEGREE`] labels ([`InlineVec`]), so the
/// hot-loop operations ([`Config::with`], [`Config::replace_one`], clones)
/// are allocation-free at paper degrees; all comparison traits read the
/// sorted slice, so the storage representation is unobservable.
///
/// # Example
///
/// ```
/// use relim_core::{Config, Label};
///
/// let c = Config::new(vec![Label::new(2), Label::new(0), Label::new(2)]);
/// assert_eq!(c.degree(), 3);
/// assert_eq!(c.count(Label::new(2)), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Config {
    labels: InlineVec<Label, INLINE_DEGREE>,
}

impl Config {
    /// Creates a configuration from labels (sorted internally).
    pub fn new(labels: Vec<Label>) -> Self {
        let mut labels = InlineVec::from_vec(labels);
        labels.as_mut_slice().sort_unstable();
        Config { labels }
    }

    /// Creates a configuration from a slice of labels (sorted internally)
    /// without allocating for degrees up to [`INLINE_DEGREE`].
    pub fn from_labels(labels: &[Label]) -> Self {
        let mut labels = InlineVec::from_slice(labels);
        labels.as_mut_slice().sort_unstable();
        Config { labels }
    }

    /// The empty configuration (degree 0).
    pub fn empty() -> Self {
        Config { labels: InlineVec::new() }
    }

    /// The configuration holding a single label (allocation-free).
    pub fn singleton(label: Label) -> Self {
        let mut labels = InlineVec::new();
        labels.push(label);
        Config { labels }
    }

    /// Number of labels (with multiplicity).
    pub fn degree(&self) -> u32 {
        self.labels.len() as u32
    }

    /// The sorted labels.
    pub fn as_slice(&self) -> &[Label] {
        self.labels.as_slice()
    }

    /// Iterates over the labels (with multiplicity, sorted).
    pub fn iter(&self) -> impl Iterator<Item = Label> + '_ {
        self.labels.iter()
    }

    /// Multiplicity of `label` in the configuration.
    ///
    /// Exploits the sorted invariant: the multiplicity is the width of the
    /// equal range, found by two binary searches instead of a linear scan.
    pub fn count(&self, label: Label) -> u32 {
        let s = self.labels.as_slice();
        (s.partition_point(|&l| l <= label) - s.partition_point(|&l| l < label)) as u32
    }

    /// Whether the configuration contains `label` at least once.
    pub fn contains(&self, label: Label) -> bool {
        self.labels.as_slice().binary_search(&label).is_ok()
    }

    /// The set of distinct labels used.
    pub fn support(&self) -> LabelSet {
        self.labels.iter().collect()
    }

    /// Distinct labels with their multiplicities, sorted by label.
    pub fn counts(&self) -> Vec<(Label, u32)> {
        let mut out: Vec<(Label, u32)> = Vec::new();
        for l in self.labels.iter() {
            match out.last_mut() {
                Some((last, c)) if *last == l => *c += 1,
                _ => out.push((l, 1)),
            }
        }
        out
    }

    /// Returns a copy with one occurrence of `from` replaced by `to`.
    ///
    /// Returns `None` if `from` does not occur. This is the elementary
    /// operation of the strength relation (paper §2.3).
    #[must_use]
    pub fn replace_one(&self, from: Label, to: Label) -> Option<Config> {
        let pos = self.labels.as_slice().iter().position(|&l| l == from)?;
        let mut labels = self.labels.clone();
        labels.as_mut_slice()[pos] = to;
        labels.as_mut_slice().sort_unstable();
        Some(Config { labels })
    }

    /// Returns a copy with `label` appended (allocation-free below the
    /// inline capacity).
    #[must_use]
    pub fn with(&self, label: Label) -> Config {
        let mut labels = self.labels.clone();
        let pos = labels.as_slice().partition_point(|&l| l <= label);
        labels.insert(pos, label);
        Config { labels }
    }

    /// Whether `self` is a sub-multiset of `other`.
    pub fn is_sub_multiset_of(&self, other: &Config) -> bool {
        let mine = self.labels.as_slice();
        let theirs = other.labels.as_slice();
        if mine.len() > theirs.len() {
            return false;
        }
        // Both sorted: two-pointer containment.
        let mut j = 0;
        for &l in mine {
            while j < theirs.len() && theirs[j] < l {
                j += 1;
            }
            if j >= theirs.len() || theirs[j] != l {
                return false;
            }
            j += 1;
        }
        true
    }

    /// All sub-multisets of `self` (of every size, including empty and full).
    pub fn sub_multisets(&self) -> Vec<Config> {
        let counts = self.counts();
        let mut out = vec![Config::empty()];
        for (label, c) in counts {
            let mut next = Vec::with_capacity(out.len() * (c as usize + 1));
            for cfg in &out {
                let mut cur = cfg.clone();
                next.push(cur.clone());
                for _ in 0..c {
                    cur = cur.with(label);
                    next.push(cur.clone());
                }
            }
            out = next;
        }
        out
    }

    /// Remaps every label through `mapping` (indexed by old label).
    ///
    /// # Panics
    ///
    /// Panics if some label has no entry in `mapping`.
    #[must_use]
    pub fn map_labels(&self, mapping: &[Label]) -> Config {
        self.labels.iter().map(|l| mapping[l.index()]).collect()
    }

    /// Renders the configuration with alphabet names, compressing runs with
    /// exponents: `M^2 X`.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let mut parts = Vec::new();
        for (label, c) in self.counts() {
            if c == 1 {
                parts.push(alphabet.name(label).to_owned());
            } else {
                parts.push(format!("{}^{}", alphabet.name(label), c));
            }
        }
        parts.join(" ")
    }
}

impl FromIterator<Label> for Config {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> Self {
        let mut labels: InlineVec<Label, INLINE_DEGREE> = iter.into_iter().collect();
        labels.as_mut_slice().sort_unstable();
        Config { labels }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", l.index())?;
        }
        Ok(())
    }
}

/// A configuration whose elements are *sets* of labels — the shape of
/// configurations midway through a round elimination step (paper §2.3).
///
/// # Example
///
/// ```
/// use relim_core::{Label, LabelSet, SetConfig};
///
/// let a = LabelSet::singleton(Label::new(0));
/// let b = a.with(Label::new(1));
/// let sc = SetConfig::new(vec![b, a]);
/// assert_eq!(sc.degree(), 2);
/// assert_eq!(sc.as_slice()[0], a); // sorted
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetConfig {
    sets: InlineVec<LabelSet, INLINE_DEGREE>,
}

impl SetConfig {
    /// Creates a set-configuration (sorted internally by raw bitmask).
    pub fn new(sets: Vec<LabelSet>) -> Self {
        let mut sets = InlineVec::from_vec(sets);
        sets.as_mut_slice().sort_unstable();
        SetConfig { sets }
    }

    /// Creates a set-configuration from a slice (sorted internally) without
    /// allocating for degrees up to [`INLINE_DEGREE`] — the DFS-leaf
    /// constructor of the universal enumeration.
    pub fn from_sets(sets: &[LabelSet]) -> Self {
        let mut sets = InlineVec::from_slice(sets);
        sets.as_mut_slice().sort_unstable();
        SetConfig { sets }
    }

    /// Creates the degree-2 set-configuration `{a, b}` (allocation-free).
    pub fn pair(a: LabelSet, b: LabelSet) -> Self {
        SetConfig::from_sets(&[a, b])
    }

    /// Number of elements (with multiplicity).
    pub fn degree(&self) -> u32 {
        self.sets.len() as u32
    }

    /// The sorted sets.
    pub fn as_slice(&self) -> &[LabelSet] {
        self.sets.as_slice()
    }

    /// Iterates over the sets.
    pub fn iter(&self) -> impl Iterator<Item = LabelSet> + '_ {
        self.sets.iter()
    }

    /// Multiplicity of `set` in the configuration.
    ///
    /// Like [`Config::count`], exploits the sorted invariant: two binary
    /// searches bound the equal range.
    pub fn count(&self, set: LabelSet) -> u32 {
        let s = self.sets.as_slice();
        (s.partition_point(|&x| x <= set) - s.partition_point(|&x| x < set)) as u32
    }

    /// Renders with alphabet names, e.g. `MX^2 O`.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let sets = self.sets.as_slice();
        let mut parts: Vec<String> = Vec::new();
        let mut i = 0;
        while i < sets.len() {
            let mut j = i;
            while j < sets.len() && sets[j] == sets[i] {
                j += 1;
            }
            let name = sets[i].display(alphabet);
            if j - i == 1 {
                parts.push(name);
            } else {
                parts.push(format!("{}^{}", name, j - i));
            }
            i = j;
        }
        parts.join(" ")
    }
}

impl FromIterator<LabelSet> for SetConfig {
    fn from_iter<I: IntoIterator<Item = LabelSet>>(iter: I) -> Self {
        let mut sets: InlineVec<LabelSet, INLINE_DEGREE> = iter.into_iter().collect();
        sets.as_mut_slice().sort_unstable();
        SetConfig { sets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u8) -> Label {
        Label::new(i)
    }

    #[test]
    fn canonical_sorting() {
        let a = Config::new(vec![l(2), l(0), l(1)]);
        let b = Config::new(vec![l(0), l(1), l(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn counts_and_support() {
        let c = Config::new(vec![l(1), l(1), l(3)]);
        assert_eq!(c.counts(), vec![(l(1), 2), (l(3), 1)]);
        assert_eq!(c.support(), LabelSet::from_bits(0b1010));
        assert_eq!(c.count(l(1)), 2);
        assert_eq!(c.count(l(0)), 0);
    }

    #[test]
    fn count_equals_linear_scan_on_all_multiplicity_shapes() {
        // The equal-range binary search must agree with the naive filter
        // for every label, present or not, across runs of every length.
        let shapes: &[&[u8]] = &[
            &[],
            &[0],
            &[1, 1, 1],
            &[0, 1, 1, 3],
            &[2, 2, 2, 2, 2],
            &[0, 0, 1, 2, 3, 3, 3, 5],
            // Spilled: degree > INLINE_DEGREE.
            &[0, 0, 1, 1, 2, 2, 3, 3, 4, 4],
        ];
        for shape in shapes {
            let c = Config::new(shape.iter().map(|&i| l(i)).collect());
            for i in 0..8 {
                let naive = c.iter().filter(|&x| x == l(i)).count() as u32;
                assert_eq!(c.count(l(i)), naive, "shape {shape:?}, label {i}");
            }
        }
    }

    #[test]
    fn setconfig_count_equals_linear_scan() {
        let sets: Vec<LabelSet> = [0b1u32, 0b1, 0b11, 0b11, 0b11, 0b100]
            .iter()
            .map(|&b| LabelSet::from_bits(b))
            .collect();
        let sc = SetConfig::new(sets);
        for bits in [0b1u32, 0b11, 0b100, 0b101, 0b0] {
            let s = LabelSet::from_bits(bits);
            let naive = sc.iter().filter(|&x| x == s).count() as u32;
            assert_eq!(sc.count(s), naive, "set {bits:#b}");
        }
    }

    #[test]
    fn singleton_and_from_labels_match_new() {
        assert_eq!(Config::singleton(l(3)), Config::new(vec![l(3)]));
        assert_eq!(Config::from_labels(&[l(2), l(0)]), Config::new(vec![l(0), l(2)]));
        assert_eq!(
            SetConfig::from_sets(&[LabelSet::from_bits(2), LabelSet::from_bits(1)]),
            SetConfig::new(vec![LabelSet::from_bits(1), LabelSet::from_bits(2)])
        );
        assert_eq!(
            SetConfig::pair(LabelSet::from_bits(2), LabelSet::from_bits(1)),
            SetConfig::new(vec![LabelSet::from_bits(1), LabelSet::from_bits(2)])
        );
    }

    #[test]
    fn replace_one() {
        let c = Config::new(vec![l(0), l(0), l(2)]);
        let r = c.replace_one(l(0), l(2)).unwrap();
        assert_eq!(r, Config::new(vec![l(0), l(2), l(2)]));
        assert!(c.replace_one(l(1), l(2)).is_none());
    }

    #[test]
    fn sub_multiset() {
        let big = Config::new(vec![l(0), l(0), l(1)]);
        assert!(Config::new(vec![l(0), l(1)]).is_sub_multiset_of(&big));
        assert!(Config::new(vec![l(0), l(0)]).is_sub_multiset_of(&big));
        assert!(!Config::new(vec![l(1), l(1)]).is_sub_multiset_of(&big));
        assert!(Config::empty().is_sub_multiset_of(&big));
        assert!(!big.is_sub_multiset_of(&Config::new(vec![l(0), l(1)])));
    }

    #[test]
    fn sub_multisets_enumeration() {
        let c = Config::new(vec![l(0), l(0), l(1)]);
        let subs = c.sub_multisets();
        // (2+1)*(1+1) = 6 sub-multisets.
        assert_eq!(subs.len(), 6);
        assert!(subs.contains(&Config::empty()));
        assert!(subs.contains(&c));
    }

    #[test]
    fn display_exponents() {
        let alpha = Alphabet::new(&["M", "P", "O"]).unwrap();
        let c = Config::new(vec![l(0), l(0), l(2)]);
        assert_eq!(c.display(&alpha), "M^2 O");
    }

    #[test]
    fn setconfig_sorted() {
        let s1 = LabelSet::from_bits(0b1);
        let s2 = LabelSet::from_bits(0b11);
        let sc = SetConfig::new(vec![s2, s1, s2]);
        assert_eq!(sc.as_slice(), &[s1, s2, s2]);
    }
}
