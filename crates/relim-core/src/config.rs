//! Configurations: multisets of labels (or label sets) of fixed length.

use crate::label::{Alphabet, Label};
use crate::labelset::LabelSet;
use std::fmt;

/// A configuration: a multiset of labels of some fixed degree.
///
/// The order of elements does not matter (paper §2.2); the internal
/// representation is kept sorted so that equality and hashing are canonical.
///
/// # Example
///
/// ```
/// use relim_core::{Config, Label};
///
/// let c = Config::new(vec![Label::new(2), Label::new(0), Label::new(2)]);
/// assert_eq!(c.degree(), 3);
/// assert_eq!(c.count(Label::new(2)), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Config {
    labels: Vec<Label>,
}

impl Config {
    /// Creates a configuration from labels (sorted internally).
    pub fn new(mut labels: Vec<Label>) -> Self {
        labels.sort_unstable();
        Config { labels }
    }

    /// The empty configuration (degree 0).
    pub fn empty() -> Self {
        Config { labels: Vec::new() }
    }

    /// Number of labels (with multiplicity).
    pub fn degree(&self) -> u32 {
        self.labels.len() as u32
    }

    /// The sorted labels.
    pub fn as_slice(&self) -> &[Label] {
        &self.labels
    }

    /// Iterates over the labels (with multiplicity, sorted).
    pub fn iter(&self) -> impl Iterator<Item = Label> + '_ {
        self.labels.iter().copied()
    }

    /// Multiplicity of `label` in the configuration.
    pub fn count(&self, label: Label) -> u32 {
        self.labels.iter().filter(|&&l| l == label).count() as u32
    }

    /// Whether the configuration contains `label` at least once.
    pub fn contains(&self, label: Label) -> bool {
        self.labels.binary_search(&label).is_ok()
    }

    /// The set of distinct labels used.
    pub fn support(&self) -> LabelSet {
        self.labels.iter().copied().collect()
    }

    /// Distinct labels with their multiplicities, sorted by label.
    pub fn counts(&self) -> Vec<(Label, u32)> {
        let mut out: Vec<(Label, u32)> = Vec::new();
        for &l in &self.labels {
            match out.last_mut() {
                Some((last, c)) if *last == l => *c += 1,
                _ => out.push((l, 1)),
            }
        }
        out
    }

    /// Returns a copy with one occurrence of `from` replaced by `to`.
    ///
    /// Returns `None` if `from` does not occur. This is the elementary
    /// operation of the strength relation (paper §2.3).
    #[must_use]
    pub fn replace_one(&self, from: Label, to: Label) -> Option<Config> {
        let pos = self.labels.iter().position(|&l| l == from)?;
        let mut labels = self.labels.clone();
        labels[pos] = to;
        Some(Config::new(labels))
    }

    /// Returns a copy with `label` appended.
    #[must_use]
    pub fn with(&self, label: Label) -> Config {
        let mut labels = self.labels.clone();
        let pos = labels.partition_point(|&l| l <= label);
        labels.insert(pos, label);
        Config { labels }
    }

    /// Whether `self` is a sub-multiset of `other`.
    pub fn is_sub_multiset_of(&self, other: &Config) -> bool {
        if self.labels.len() > other.labels.len() {
            return false;
        }
        // Both sorted: two-pointer containment.
        let mut j = 0;
        for &l in &self.labels {
            while j < other.labels.len() && other.labels[j] < l {
                j += 1;
            }
            if j >= other.labels.len() || other.labels[j] != l {
                return false;
            }
            j += 1;
        }
        true
    }

    /// All sub-multisets of `self` (of every size, including empty and full).
    pub fn sub_multisets(&self) -> Vec<Config> {
        let counts = self.counts();
        let mut out = vec![Config::empty()];
        for (label, c) in counts {
            let mut next = Vec::with_capacity(out.len() * (c as usize + 1));
            for cfg in &out {
                let mut cur = cfg.clone();
                next.push(cur.clone());
                for _ in 0..c {
                    cur = cur.with(label);
                    next.push(cur.clone());
                }
            }
            out = next;
        }
        out
    }

    /// Remaps every label through `mapping` (indexed by old label).
    ///
    /// # Panics
    ///
    /// Panics if some label has no entry in `mapping`.
    #[must_use]
    pub fn map_labels(&self, mapping: &[Label]) -> Config {
        Config::new(self.labels.iter().map(|l| mapping[l.index()]).collect())
    }

    /// Renders the configuration with alphabet names, compressing runs with
    /// exponents: `M^2 X`.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let mut parts = Vec::new();
        for (label, c) in self.counts() {
            if c == 1 {
                parts.push(alphabet.name(label).to_owned());
            } else {
                parts.push(format!("{}^{}", alphabet.name(label), c));
            }
        }
        parts.join(" ")
    }
}

impl FromIterator<Label> for Config {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> Self {
        Config::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", l.index())?;
        }
        Ok(())
    }
}

/// A configuration whose elements are *sets* of labels — the shape of
/// configurations midway through a round elimination step (paper §2.3).
///
/// # Example
///
/// ```
/// use relim_core::{Label, LabelSet, SetConfig};
///
/// let a = LabelSet::singleton(Label::new(0));
/// let b = a.with(Label::new(1));
/// let sc = SetConfig::new(vec![b, a]);
/// assert_eq!(sc.degree(), 2);
/// assert_eq!(sc.as_slice()[0], a); // sorted
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetConfig {
    sets: Vec<LabelSet>,
}

impl SetConfig {
    /// Creates a set-configuration (sorted internally by raw bitmask).
    pub fn new(mut sets: Vec<LabelSet>) -> Self {
        sets.sort_unstable();
        SetConfig { sets }
    }

    /// Number of elements (with multiplicity).
    pub fn degree(&self) -> u32 {
        self.sets.len() as u32
    }

    /// The sorted sets.
    pub fn as_slice(&self) -> &[LabelSet] {
        &self.sets
    }

    /// Iterates over the sets.
    pub fn iter(&self) -> impl Iterator<Item = LabelSet> + '_ {
        self.sets.iter().copied()
    }

    /// Renders with alphabet names, e.g. `MX^2 O`.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut i = 0;
        while i < self.sets.len() {
            let mut j = i;
            while j < self.sets.len() && self.sets[j] == self.sets[i] {
                j += 1;
            }
            let name = self.sets[i].display(alphabet);
            if j - i == 1 {
                parts.push(name);
            } else {
                parts.push(format!("{}^{}", name, j - i));
            }
            i = j;
        }
        parts.join(" ")
    }
}

impl FromIterator<LabelSet> for SetConfig {
    fn from_iter<I: IntoIterator<Item = LabelSet>>(iter: I) -> Self {
        SetConfig::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u8) -> Label {
        Label::new(i)
    }

    #[test]
    fn canonical_sorting() {
        let a = Config::new(vec![l(2), l(0), l(1)]);
        let b = Config::new(vec![l(0), l(1), l(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn counts_and_support() {
        let c = Config::new(vec![l(1), l(1), l(3)]);
        assert_eq!(c.counts(), vec![(l(1), 2), (l(3), 1)]);
        assert_eq!(c.support(), LabelSet::from_bits(0b1010));
        assert_eq!(c.count(l(1)), 2);
        assert_eq!(c.count(l(0)), 0);
    }

    #[test]
    fn replace_one() {
        let c = Config::new(vec![l(0), l(0), l(2)]);
        let r = c.replace_one(l(0), l(2)).unwrap();
        assert_eq!(r, Config::new(vec![l(0), l(2), l(2)]));
        assert!(c.replace_one(l(1), l(2)).is_none());
    }

    #[test]
    fn sub_multiset() {
        let big = Config::new(vec![l(0), l(0), l(1)]);
        assert!(Config::new(vec![l(0), l(1)]).is_sub_multiset_of(&big));
        assert!(Config::new(vec![l(0), l(0)]).is_sub_multiset_of(&big));
        assert!(!Config::new(vec![l(1), l(1)]).is_sub_multiset_of(&big));
        assert!(Config::empty().is_sub_multiset_of(&big));
        assert!(!big.is_sub_multiset_of(&Config::new(vec![l(0), l(1)])));
    }

    #[test]
    fn sub_multisets_enumeration() {
        let c = Config::new(vec![l(0), l(0), l(1)]);
        let subs = c.sub_multisets();
        // (2+1)*(1+1) = 6 sub-multisets.
        assert_eq!(subs.len(), 6);
        assert!(subs.contains(&Config::empty()));
        assert!(subs.contains(&c));
    }

    #[test]
    fn display_exponents() {
        let alpha = Alphabet::new(&["M", "P", "O"]).unwrap();
        let c = Config::new(vec![l(0), l(0), l(2)]);
        assert_eq!(c.display(&alpha), "M^2 O");
    }

    #[test]
    fn setconfig_sorted() {
        let s1 = LabelSet::from_bits(0b1);
        let s2 = LabelSet::from_bits(0b11);
        let sc = SetConfig::new(vec![s2, s1, s2]);
        assert_eq!(sc.as_slice(), &[s1, s2, s2]);
    }
}
