//! Condensed configurations ("lines").
//!
//! The paper writes constraints compactly as *condensed configurations* like
//! `M^(Δ-x) X^x` or `P [M X]`: each position holds a *disjunction* of labels,
//! and positions with the same disjunction are grouped with an exponent
//! (§2.2, "Representation of Problems in the Framework"). A [`Line`]
//! represents one such condensed configuration; a configuration is
//! *contained* in a line if some choice of the disjunctions produces it.

use crate::config::Config;
use crate::error::{RelimError, Result};
use crate::label::Alphabet;
use crate::labelset::LabelSet;
use crate::matching::transport_feasible;
use std::fmt;

/// A condensed configuration: a multiset of `(label set, multiplicity)`
/// groups.
///
/// # Example
///
/// ```
/// use relim_core::{Alphabet, Config, Line, LabelSet};
///
/// let alpha = Alphabet::new(&["M", "P", "O"]).unwrap();
/// let m = alpha.label("M").unwrap();
/// let p = alpha.label("P").unwrap();
/// let o = alpha.label("O").unwrap();
///
/// // The condensed configuration `M [P O]` (edge constraint of MIS).
/// let line = Line::new(vec![
///     (LabelSet::singleton(m), 1),
///     (LabelSet::singleton(p).with(o), 1),
/// ]).unwrap();
///
/// assert!(line.contains(&Config::new(vec![m, p])));
/// assert!(line.contains(&Config::new(vec![m, o])));
/// assert!(!line.contains(&Config::new(vec![p, o])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Line {
    /// Sorted by label-set bits; no duplicate sets; no zero multiplicities.
    groups: Vec<(LabelSet, u32)>,
}

impl Line {
    /// Creates a line from `(set, multiplicity)` groups.
    ///
    /// Groups with identical sets are merged and the result is canonically
    /// sorted.
    ///
    /// # Errors
    ///
    /// Returns [`RelimError::EmptyConstraint`] if the total multiplicity is
    /// zero or any group's label set is empty.
    pub fn new(groups: Vec<(LabelSet, u32)>) -> Result<Self> {
        let mut merged: Vec<(LabelSet, u32)> = Vec::new();
        for (set, mult) in groups {
            if mult == 0 {
                continue;
            }
            if set.is_empty() {
                return Err(RelimError::EmptyConstraint);
            }
            match merged.iter_mut().find(|(s, _)| *s == set) {
                Some((_, m)) => *m += mult,
                None => merged.push((set, mult)),
            }
        }
        if merged.is_empty() {
            return Err(RelimError::EmptyConstraint);
        }
        merged.sort_unstable_by_key(|(s, _)| *s);
        Ok(Line { groups: merged })
    }

    /// Creates a line with every position holding the same disjunction.
    pub fn uniform(set: LabelSet, degree: u32) -> Result<Self> {
        Line::new(vec![(set, degree)])
    }

    /// Total degree (sum of multiplicities).
    pub fn degree(&self) -> u32 {
        self.groups.iter().map(|(_, m)| m).sum()
    }

    /// The groups, sorted by label-set bits.
    pub fn groups(&self) -> &[(LabelSet, u32)] {
        &self.groups
    }

    /// Union of all label sets mentioned.
    pub fn support(&self) -> LabelSet {
        self.groups.iter().fold(LabelSet::EMPTY, |acc, (s, _)| acc.union(*s))
    }

    /// Whether `config` can be produced by choosing one label from each
    /// position's disjunction (Hall's condition via a small max-flow).
    pub fn contains(&self, config: &Config) -> bool {
        if config.degree() != self.degree() {
            return false;
        }
        let counts = config.counts();
        let supply: Vec<u32> = counts.iter().map(|&(_, c)| c).collect();
        let options: Vec<u64> = counts
            .iter()
            .map(|&(label, _)| {
                let mut mask = 0u64;
                for (g, (set, _)) in self.groups.iter().enumerate() {
                    if set.contains(label) {
                        mask |= 1 << g;
                    }
                }
                mask
            })
            .collect();
        let caps: Vec<u32> = self.groups.iter().map(|&(_, m)| m).collect();
        transport_feasible(&supply, &options, &caps)
    }

    /// Expands the line into every concrete configuration it contains.
    ///
    /// The result is deduplicated and sorted. Beware: the expansion of a line
    /// of degree Δ over large disjunctions can be combinatorially large.
    pub fn expand(&self) -> Vec<Config> {
        let mut acc: Vec<Config> = vec![Config::empty()];
        for &(set, mult) in &self.groups {
            let choices = multisets_from_set(set, mult);
            let mut next = Vec::with_capacity(acc.len() * choices.len());
            for base in &acc {
                for choice in &choices {
                    let mut labels: Vec<_> = base.iter().collect();
                    labels.extend(choice.iter());
                    next.push(Config::new(labels));
                }
            }
            next.sort_unstable();
            next.dedup();
            acc = next;
        }
        acc
    }

    /// Remaps every label through `mapping`, merging groups as needed.
    ///
    /// # Panics
    ///
    /// Panics if some label in the line has no entry in `mapping`.
    #[must_use]
    pub fn map_labels(&self, mapping: &[crate::label::Label]) -> Line {
        let groups = self
            .groups
            .iter()
            .map(|&(set, mult)| {
                let mapped: LabelSet = set.iter().map(|l| mapping[l.index()]).collect();
                (mapped, mult)
            })
            .collect();
        Line::new(groups).expect("mapped line is non-empty")
    }

    /// Renders with alphabet names: `M^14 [P O]^2`.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let mut parts = Vec::new();
        for &(set, mult) in &self.groups {
            let body = if set.len() == 1 {
                alphabet.name(set.first().expect("non-empty")).to_owned()
            } else {
                format!("[{}]", set.iter().map(|l| alphabet.name(l)).collect::<Vec<_>>().join(" "))
            };
            if mult == 1 {
                parts.push(body);
            } else {
                parts.push(format!("{body}^{mult}"));
            }
        }
        parts.join(" ")
    }
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (set, mult)) in self.groups.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{set}^{mult}")?;
        }
        Ok(())
    }
}

/// All multisets of size `k` drawn from the labels of `set`.
///
/// Recursion depth is the number of *distinct* labels (≤ 31), never the
/// multiplicity, so lines of astronomically high degree expand safely.
pub(crate) fn multisets_from_set(set: LabelSet, k: u32) -> Vec<Config> {
    let labels: Vec<crate::label::Label> = set.iter().collect();
    if labels.is_empty() {
        return if k == 0 { vec![Config::empty()] } else { Vec::new() };
    }
    let mut out = Vec::new();
    let mut counts = vec![0u32; labels.len()];
    fn rec(
        labels: &[crate::label::Label],
        i: usize,
        remaining: u32,
        counts: &mut Vec<u32>,
        out: &mut Vec<Config>,
    ) {
        if i + 1 == labels.len() {
            counts[i] = remaining;
            let mut cfg = Vec::with_capacity(counts.iter().sum::<u32>() as usize);
            for (j, &c) in counts.iter().enumerate() {
                cfg.extend(std::iter::repeat_n(labels[j], c as usize));
            }
            out.push(Config::new(cfg));
            return;
        }
        for c in 0..=remaining {
            counts[i] = c;
            rec(labels, i + 1, remaining - c, counts, out);
        }
    }
    rec(&labels, 0, k, &mut counts, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn l(i: u8) -> Label {
        Label::new(i)
    }

    fn ls(bits: u32) -> LabelSet {
        LabelSet::from_bits(bits)
    }

    #[test]
    fn merge_and_canonicalize() {
        let line = Line::new(vec![(ls(0b10), 1), (ls(0b01), 2), (ls(0b10), 3)]).unwrap();
        assert_eq!(line.groups(), &[(ls(0b01), 2), (ls(0b10), 4)]);
        assert_eq!(line.degree(), 6);
    }

    #[test]
    fn empty_rejected() {
        assert!(Line::new(vec![]).is_err());
        assert!(Line::new(vec![(ls(0), 2)]).is_err());
        assert!(Line::new(vec![(ls(1), 0)]).is_err());
    }

    #[test]
    fn contains_basic() {
        // Line: [AB] [AB] C  (labels 0=A, 1=B, 2=C)
        let line = Line::new(vec![(ls(0b011), 2), (ls(0b100), 1)]).unwrap();
        assert!(line.contains(&Config::new(vec![l(0), l(0), l(2)])));
        assert!(line.contains(&Config::new(vec![l(0), l(1), l(2)])));
        assert!(!line.contains(&Config::new(vec![l(0), l(1), l(1)])));
        assert!(!line.contains(&Config::new(vec![l(2), l(2), l(0)])));
        // Wrong degree.
        assert!(!line.contains(&Config::new(vec![l(0), l(2)])));
    }

    #[test]
    fn contains_needs_flow_not_greedy() {
        // Groups: [A]^1, [AB]^1. Config A B: B must take group 2, A group 1.
        let line = Line::new(vec![(ls(0b01), 1), (ls(0b11), 1)]).unwrap();
        assert!(line.contains(&Config::new(vec![l(0), l(1)])));
        assert!(line.contains(&Config::new(vec![l(0), l(0)])));
        assert!(!line.contains(&Config::new(vec![l(1), l(1)])));
    }

    #[test]
    fn expansion_matches_contains() {
        let line = Line::new(vec![(ls(0b011), 2), (ls(0b110), 1)]).unwrap();
        let expanded = line.expand();
        // Every expanded config must be contained.
        for cfg in &expanded {
            assert!(line.contains(cfg), "expanded {cfg:?} not contained");
        }
        // Exhaustive cross-check over all multisets of degree 3 over 3 labels.
        let all = multisets_from_set(ls(0b111), 3);
        for cfg in all {
            assert_eq!(expanded.contains(&cfg), line.contains(&cfg), "mismatch on {cfg:?}");
        }
    }

    #[test]
    fn multisets_count() {
        // C(3+2-1, 2) = 6 multisets of size 2 from 3 labels.
        assert_eq!(multisets_from_set(ls(0b111), 2).len(), 6);
        assert_eq!(multisets_from_set(ls(0b1), 4).len(), 1);
        assert_eq!(multisets_from_set(ls(0b111), 0).len(), 1);
    }

    #[test]
    fn display_forms() {
        let alpha = Alphabet::new(&["M", "P", "O"]).unwrap();
        let line = Line::new(vec![(ls(0b001), 2), (ls(0b110), 1)]).unwrap();
        assert_eq!(line.display(&alpha), "M^2 [P O]");
    }
}
