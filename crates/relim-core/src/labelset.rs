//! Bitmask sets of labels.

use crate::label::{Alphabet, Label, MAX_LABELS};
use std::fmt;

/// A set of [`Label`]s, represented as a `u32` bitmask.
///
/// Label sets are the currency of round elimination: after one application of
/// `R(·)`, the labels of the new problem *are* sets of labels of the old
/// problem (paper §2.3).
///
/// # Example
///
/// ```
/// use relim_core::{Label, LabelSet};
///
/// let s = LabelSet::from_iter([Label::new(0), Label::new(2)]);
/// assert!(s.contains(Label::new(0)));
/// assert!(!s.contains(Label::new(1)));
/// assert_eq!(s.len(), 2);
/// let t = s.union(LabelSet::singleton(Label::new(1)));
/// assert!(s.is_subset_of(t));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LabelSet(u32);

impl LabelSet {
    /// The empty set.
    pub const EMPTY: LabelSet = LabelSet(0);

    /// Creates a set from a raw bitmask.
    pub fn from_bits(bits: u32) -> Self {
        debug_assert!(bits < (1 << MAX_LABELS));
        LabelSet(bits)
    }

    /// The raw bitmask.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// The set containing exactly one label.
    pub fn singleton(label: Label) -> Self {
        LabelSet(1 << label.index())
    }

    /// The full set over an alphabet of `n` labels.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_LABELS);
        if n == 0 {
            LabelSet(0)
        } else {
            LabelSet(u32::MAX >> (32 - n))
        }
    }

    /// Whether the set contains `label`.
    pub fn contains(self, label: Label) -> bool {
        self.0 & (1 << label.index()) != 0
    }

    /// Inserts a label, returning the new set.
    #[must_use]
    pub fn with(self, label: Label) -> Self {
        LabelSet(self.0 | (1 << label.index()))
    }

    /// Removes a label, returning the new set.
    #[must_use]
    pub fn without(self, label: Label) -> Self {
        LabelSet(self.0 & !(1 << label.index()))
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: LabelSet) -> Self {
        LabelSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: LabelSet) -> Self {
        LabelSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: LabelSet) -> Self {
        LabelSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(self, other: LabelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self ⊂ other` strictly.
    pub fn is_strict_subset_of(self, other: LabelSet) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// Whether the two sets share at least one label.
    pub fn intersects(self, other: LabelSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of labels in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the labels in the set, in index order.
    pub fn iter(self) -> LabelSetIter {
        LabelSetIter(self.0)
    }

    /// The smallest label in the set, if any.
    pub fn first(self) -> Option<Label> {
        if self.0 == 0 {
            None
        } else {
            Some(Label::new(self.0.trailing_zeros() as u8))
        }
    }

    /// Renders the set using an alphabet's names.
    ///
    /// Single-character alphabets render densely (`MOX`); otherwise names are
    /// brace-wrapped and space-separated (`{Foo Bar}`).
    pub fn display(self, alphabet: &Alphabet) -> String {
        let names: Vec<&str> = self.iter().map(|l| alphabet.name(l)).collect();
        if alphabet.all_single_char() {
            names.concat()
        } else {
            format!("{{{}}}", names.join(" "))
        }
    }
}

impl FromIterator<Label> for LabelSet {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> Self {
        let mut s = LabelSet::EMPTY;
        for l in iter {
            s = s.with(l);
        }
        s
    }
}

impl fmt::Display for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", l.index())?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the labels of a [`LabelSet`], produced by [`LabelSet::iter`].
#[derive(Debug, Clone)]
pub struct LabelSetIter(u32);

impl Iterator for LabelSetIter {
    type Item = Label;

    fn next(&mut self) -> Option<Label> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(Label::new(i as u8))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for LabelSetIter {}

/// Iterates over all non-empty subsets of `universe`, in increasing bitmask
/// order.
///
/// # Example
///
/// ```
/// use relim_core::labelset::{subsets_nonempty, LabelSet};
///
/// let universe = LabelSet::full(2);
/// let subs: Vec<LabelSet> = subsets_nonempty(universe).collect();
/// assert_eq!(subs.len(), 3);
/// ```
pub fn subsets_nonempty(universe: LabelSet) -> impl Iterator<Item = LabelSet> {
    let u = universe.bits();
    // Standard subset-enumeration trick: (s - u) & u walks all subsets.
    let mut s: u32 = 0;
    let mut done = false;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        s = s.wrapping_sub(u) & u;
        if s == 0 {
            done = true;
            return None;
        }
        Some(LabelSet::from_bits(s))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = Label::new(0);
        let b = Label::new(3);
        let s = LabelSet::singleton(a).with(b);
        assert_eq!(s.len(), 2);
        assert!(s.contains(a) && s.contains(b));
        assert_eq!(s.without(a), LabelSet::singleton(b));
        assert!(LabelSet::singleton(a).is_strict_subset_of(s));
        assert!(!s.is_strict_subset_of(s));
    }

    #[test]
    fn full_set() {
        assert_eq!(LabelSet::full(0), LabelSet::EMPTY);
        assert_eq!(LabelSet::full(5).len(), 5);
        assert_eq!(LabelSet::full(31).len(), 31);
    }

    #[test]
    fn iteration_order() {
        let s = LabelSet::from_bits(0b1011);
        let v: Vec<usize> = s.iter().map(|l| l.index()).collect();
        assert_eq!(v, vec![0, 1, 3]);
    }

    #[test]
    fn subset_enumeration() {
        let u = LabelSet::from_bits(0b101);
        let subs: Vec<u32> = subsets_nonempty(u).map(|s| s.bits()).collect();
        assert_eq!(subs, vec![0b001, 0b100, 0b101]);
        assert_eq!(subsets_nonempty(LabelSet::full(4)).count(), 15);
    }

    #[test]
    fn display_dense() {
        let alpha = Alphabet::new(&["M", "P", "O"]).unwrap();
        let s = LabelSet::from_bits(0b101);
        assert_eq!(s.display(&alpha), "MO");
    }
}
