//! Isomorphism between problems: equality up to renaming of labels.

use crate::label::Label;
use crate::problem::Problem;

/// Searches for a label bijection `σ` with `σ(P) = Q` (both constraints
/// mapped configuration-by-configuration).
///
/// Returns `mapping` with `mapping[p_label] = q_label`, or `None` if the
/// problems are not isomorphic. Backtracking over label assignments, pruned
/// by per-label invariants (occurrence counts in node/edge configurations
/// and self-compatibility), so it is fast for the ≤ 10-label problems of the
/// paper.
///
/// # Example
///
/// ```
/// use relim_core::{iso, Problem};
///
/// let p = Problem::from_text("M M\nP O", "M [P O]\nO O").unwrap();
/// // Same problem with M renamed to Z and listed in a different order:
/// let q = Problem::from_text("P O\nZ Z", "O O\nZ [P O]").unwrap();
/// let mapping = iso::find_isomorphism(&p, &q).unwrap();
/// let z = q.alphabet().label("Z").unwrap();
/// let m = p.alphabet().label("M").unwrap();
/// assert_eq!(mapping[m.index()], z);
/// ```
pub fn find_isomorphism(p: &Problem, q: &Problem) -> Option<Vec<Label>> {
    if p.alphabet().len() != q.alphabet().len()
        || p.delta() != q.delta()
        || p.node().len() != q.node().len()
        || p.edge().len() != q.edge().len()
    {
        return None;
    }
    let n = p.alphabet().len();
    let p_sig = signatures(p);
    let q_sig = signatures(q);

    // candidates[a] = q-labels with the same signature as p-label a.
    let candidates: Vec<Vec<Label>> = (0..n)
        .map(|a| (0..n).filter(|&b| p_sig[a] == q_sig[b]).map(|b| Label::new(b as u8)).collect())
        .collect();
    if candidates.iter().any(Vec::is_empty) {
        return None;
    }

    let mut mapping: Vec<Option<Label>> = vec![None; n];
    let mut used = vec![false; n];
    // Assign most-constrained labels first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&a| candidates[a].len());

    fn rec(
        i: usize,
        order: &[usize],
        candidates: &[Vec<Label>],
        mapping: &mut Vec<Option<Label>>,
        used: &mut Vec<bool>,
        p: &Problem,
        q: &Problem,
    ) -> bool {
        if i == order.len() {
            let m: Vec<Label> = mapping.iter().map(|x| x.expect("complete")).collect();
            return check_mapping(p, q, &m);
        }
        let a = order[i];
        for &b in &candidates[a] {
            if used[b.index()] {
                continue;
            }
            mapping[a] = Some(b);
            used[b.index()] = true;
            if rec(i + 1, order, candidates, mapping, used, p, q) {
                return true;
            }
            mapping[a] = None;
            used[b.index()] = false;
        }
        false
    }

    if rec(0, &order, &candidates, &mut mapping, &mut used, p, q) {
        Some(mapping.into_iter().map(|x| x.expect("complete")).collect())
    } else {
        None
    }
}

/// Whether `mapping` (p-label → q-label) sends `p` exactly onto `q`.
pub fn check_mapping(p: &Problem, q: &Problem, mapping: &[Label]) -> bool {
    p.node().map_labels(mapping) == *q.node() && p.edge().map_labels(mapping) == *q.edge()
}

/// Whether the problems are equal up to a renaming of labels.
pub fn isomorphic(p: &Problem, q: &Problem) -> bool {
    find_isomorphism(p, q).is_some()
}

/// A per-label invariant preserved by isomorphism.
fn signatures(p: &Problem) -> Vec<(Vec<u32>, Vec<u32>, bool)> {
    let n = p.alphabet().len();
    (0..n)
        .map(|i| {
            let l = Label::new(i as u8);
            let mut node_counts: Vec<u32> = p.node().iter().map(|c| c.count(l)).collect();
            node_counts.sort_unstable();
            let mut edge_counts: Vec<u32> = p.edge().iter().map(|c| c.count(l)).collect();
            edge_counts.sort_unstable();
            let self_compat = p.edge().contains(&crate::config::Config::new(vec![l, l]));
            (node_counts, edge_counts, self_compat)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_isomorphism() {
        let p = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let m = find_isomorphism(&p, &p).unwrap();
        assert!(check_mapping(&p, &p, &m));
    }

    #[test]
    fn renamed_isomorphism() {
        let p = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let q = Problem::from_text("a a a\nb c c", "a [b c]\nc c").unwrap();
        assert!(isomorphic(&p, &q));
    }

    #[test]
    fn non_isomorphic_detected() {
        let p = Problem::from_text("M M\nP O", "M [P O]\nO O").unwrap();
        let q = Problem::from_text("M M\nP O", "M [P O]\nM M").unwrap();
        assert!(!isomorphic(&p, &q));
    }

    #[test]
    fn swap_is_isomorphism() {
        // Swapping P and O maps edge {MP, MO, OO} to {MO, MP, PP}: these two
        // problems are isomorphic even though they look different.
        let p = Problem::from_text("M M\nP O", "M [P O]\nO O").unwrap();
        let q = Problem::from_text("M M\nP O", "M [P O]\nP P").unwrap();
        assert!(isomorphic(&p, &q));
    }

    #[test]
    fn size_mismatch_fast_path() {
        let p = Problem::from_text("M M", "M M").unwrap();
        let q = Problem::from_text("M M\nP P", "M M\nP P").unwrap();
        assert!(!isomorphic(&p, &q));
    }
}
