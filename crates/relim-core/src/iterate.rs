//! Iterated round elimination with bookkeeping.
//!
//! Drives `Π ↦ R̄(R(Π))` repeatedly, recording description sizes and
//! detecting fixed points — the workflow behind both the "doubly
//! exponential growth" observation (paper §1.2, experiment E13) and
//! fixed-point lower bounds (§1.2, "Fixed points").
//!
//! ## Cross-step memoization
//!
//! Each `R̄` application starts by building the **sub-multiset index** of
//! the node constraint it universally quantifies over — a pure function of
//! that constraint. Fixed-point searches recompute steps on recurring
//! problems (the confirming step at a fixed point, repeated probes of the
//! same problem), so the session API ([`crate::engine::Engine::iterate`])
//! serves the index from a [`SubIndexCache`]: an exact-match cache from
//! node constraints to `Arc`-shared indices, owned by the `Engine` and
//! shared across *all* of its calls. Cache hits skip the enumeration work
//! of rebuilding the index and are **byte-identical** to cache misses
//! (the index content is fully determined by the constraint) — pinned by
//! [`iterate_rr_unmemoized`], the memoization-off reference path the
//! differential suite compares against.

use crate::constraint::{Constraint, SubMultisetIndex};
use crate::iso;
use crate::problem::Problem;
use crate::roundelim::{r_step, rbar_step_pooled, Step};
use relim_pool::Pool;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Why an iteration stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The latest problem is isomorphic to the previous one.
    FixedPoint,
    /// The configured maximum number of steps was reached.
    MaxSteps,
    /// The alphabet exceeded `label_limit` (doubly-exponential growth).
    LabelLimit {
        /// Labels the next step would have had to handle.
        labels: usize,
    },
    /// A step produced an empty constraint.
    Degenerate {
        /// Engine error message.
        message: String,
    },
}

/// Description-size statistics for one problem in the iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepStats {
    /// Iteration index (0 = input problem).
    pub step: usize,
    /// Alphabet size (used labels only).
    pub labels: usize,
    /// Node configuration count.
    pub node_configs: usize,
    /// Edge configuration count.
    pub edge_configs: usize,
}

/// The outcome of an iterated round-elimination search
/// ([`crate::engine::Engine::iterate`] / [`iterate_rr_unmemoized`]).
#[derive(Debug, Clone)]
pub struct IterationOutcome {
    /// Per-step statistics, starting with the input problem.
    pub stats: Vec<StepStats>,
    /// The problems themselves (unused labels dropped), aligned with
    /// `stats`.
    pub problems: Vec<Problem>,
    /// Why the iteration stopped.
    pub stopped: StopReason,
}

impl IterationOutcome {
    /// Whether a fixed point was found.
    pub fn reached_fixed_point(&self) -> bool {
        self.stopped == StopReason::FixedPoint
    }
}

fn stats_of(step: usize, p: &Problem) -> StepStats {
    StepStats {
        step,
        labels: p.alphabet().len(),
        node_configs: p.node().len(),
        edge_configs: p.edge().len(),
    }
}

/// A concurrent exact-match cache from node constraints to their
/// `Arc`-shared sub-multiset indices, letting consecutive (or repeated)
/// iteration steps — possibly on different threads sharing one
/// [`crate::engine::Engine`] session — reuse the index enumeration work.
///
/// The index is a pure function of the constraint, so a hit is
/// byte-identical to a rebuild; sharing the cache between threads can
/// therefore never change output bytes, only counters and wall clock.
///
/// ## Sharding
///
/// The map is split into `shards` independently-locked shards; a
/// constraint's shard is chosen by its hash, so concurrent lookups of
/// *different* constraints contend only when they collide on a shard.
/// Each shard is bounded by a per-shard capacity (the total `capacity`
/// divided evenly, at least 1): when a shard is full, the next insertion
/// into it clears that shard (an epoch reset — simple, deterministic,
/// and sufficient for fixed-point searches whose working set is tiny).
/// With one shard this degenerates to exactly the historical
/// whole-cache epoch reset.
///
/// Hit/miss counters are atomics. The lookup→build→insert window is a
/// benign race: two threads missing the same constraint concurrently
/// both build and insert the *same bytes*, so at most one duplicate
/// build per racing thread is ever observable in the counters — never
/// in results.
#[derive(Debug)]
pub struct SubIndexCache {
    shards: Vec<Mutex<HashMap<Constraint, Arc<SubMultisetIndex>>>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SubIndexCache {
    /// A single-shard cache holding up to 64 constraints.
    pub fn new() -> SubIndexCache {
        SubIndexCache::with_capacity(64)
    }

    /// A single-shard cache holding up to `capacity` constraints (at
    /// least 1) — the historical epoch-reset behaviour, byte-for-byte.
    pub fn with_capacity(capacity: usize) -> SubIndexCache {
        SubIndexCache::sharded(1, capacity)
    }

    /// A cache of `shards` independently-locked shards (at least 1)
    /// holding up to `capacity` constraints in total: each shard is
    /// bounded by `capacity / shards` (rounded up, at least 1) and
    /// epoch-resets independently.
    pub fn sharded(shards: usize, capacity: usize) -> SubIndexCache {
        let shards = shards.max(1);
        let shard_capacity = capacity.max(1).div_ceil(shards);
        SubIndexCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of independently-locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `constraint`, chosen by its hash.
    fn shard_of(
        &self,
        constraint: &Constraint,
    ) -> &Mutex<HashMap<Constraint, Arc<SubMultisetIndex>>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        constraint.hash(&mut hasher);
        &self.shards[(hasher.finish() % self.shards.len() as u64) as usize]
    }

    /// The index for `constraint`, shared from the cache or built (and
    /// cached) on a miss. The build happens outside the shard lock, so
    /// concurrent misses of different constraints never serialize on
    /// each other's enumeration work.
    pub fn get_or_build(&self, constraint: &Constraint) -> Arc<SubMultisetIndex> {
        if let Some(index) = self.lookup(constraint) {
            return index;
        }
        let index = Arc::new(constraint.sub_multiset_index());
        self.insert(constraint.clone(), Arc::clone(&index));
        index
    }

    /// The cached index for `constraint`, if held; counts a hit or a miss.
    /// Split out from [`SubIndexCache::get_or_build`] so a caller (the
    /// [`crate::engine::Engine`]) can build outside the shard lock.
    pub fn lookup(&self, constraint: &Constraint) -> Option<Arc<SubMultisetIndex>> {
        let shard = self.shard_of(constraint).lock().expect("cache shard poisoned");
        match shard.get(constraint) {
            Some(index) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(index))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a built index, clearing the target shard first when its
    /// per-shard capacity is already reached (the epoch reset).
    ///
    /// Only the miss path of [`SubIndexCache::get_or_build`] reaches this
    /// — a hit returns straight out of [`SubIndexCache::lookup`] without
    /// ever owning a `Constraint` — so this is the one place that pays the
    /// owned-key insert. The common under-capacity insert is a single hash
    /// lookup; the `contains_key` probe runs only in the rare at-capacity
    /// case, where a *replacement* (racing duplicate build of a resident
    /// key) must not trigger the epoch reset since it cannot grow the
    /// shard.
    pub fn insert(&self, constraint: Constraint, index: Arc<SubMultisetIndex>) {
        let mut shard = self.shard_of(&constraint).lock().expect("cache shard poisoned");
        if shard.len() >= self.shard_capacity && !shard.contains_key(&constraint) {
            shard.clear();
        }
        shard.insert(constraint, index);
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build the index.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct constraints currently held, summed over all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").len()).sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SubIndexCache {
    fn default() -> Self {
        SubIndexCache::new()
    }
}

/// The memoization-off reference for [`crate::engine::Engine::iterate`]:
/// every step rebuilds its sub-multiset index from scratch, with no
/// session state anywhere. Exists so differential tests can pin that the
/// memoized path changes nothing; not deprecated on purpose.
pub fn iterate_rr_unmemoized(
    p: &Problem,
    max_steps: usize,
    label_limit: usize,
    pool: &Pool,
) -> IterationOutcome {
    iterate_with_step(p, max_steps, label_limit, |prev| {
        let r = r_step(prev)?;
        let rr = rbar_step_pooled(&r.problem, pool)?;
        Ok((r, rr))
    })
}

/// The shared iteration loop, parameterized over how one step is computed
/// (the engine passes its cache-serving session step).
pub(crate) fn iterate_with_step(
    p: &Problem,
    max_steps: usize,
    label_limit: usize,
    mut step_fn: impl FnMut(&Problem) -> crate::error::Result<(Step, Step)>,
) -> IterationOutcome {
    let (current, _) = p.drop_unused_labels();
    let mut problems = vec![current];
    let mut stats = vec![stats_of(0, &problems[0])];
    for step in 1..=max_steps {
        let prev = problems.last().expect("non-empty").clone();
        if prev.alphabet().len() > label_limit {
            return IterationOutcome {
                stats,
                problems,
                stopped: StopReason::LabelLimit { labels: prev.alphabet().len() },
            };
        }
        match step_fn(&prev) {
            Ok((_, rr)) => {
                let (reduced, _) = rr.problem.drop_unused_labels();
                let fixed = iso::isomorphic(&reduced, &prev);
                stats.push(stats_of(step, &reduced));
                problems.push(reduced);
                if fixed {
                    return IterationOutcome { stats, problems, stopped: StopReason::FixedPoint };
                }
            }
            Err(crate::error::RelimError::TooManyLabels { requested }) => {
                return IterationOutcome {
                    stats,
                    problems,
                    stopped: StopReason::LabelLimit { labels: requested },
                }
            }
            Err(e) => {
                return IterationOutcome {
                    stats,
                    problems,
                    stopped: StopReason::Degenerate { message: e.to_string() },
                }
            }
        }
    }
    IterationOutcome { stats, problems, stopped: StopReason::MaxSteps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn sinkless_orientation_fixed_point_detected() {
        let so = Problem::from_text("O I I I", "[O I] I").unwrap();
        let outcome = Engine::sequential().iterate_with_limits(&so, 4, 20);
        assert!(outcome.reached_fixed_point());
        // Sizes stable across the confirming step.
        assert_eq!(outcome.stats[0].labels, outcome.stats[1].labels);
    }

    #[test]
    fn mis_growth_hits_label_limit() {
        let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let outcome = Engine::sequential().iterate_with_limits(&mis, 10, 20);
        assert!(matches!(outcome.stopped, StopReason::LabelLimit { .. }));
        // Strictly growing label counts before the stop.
        let labels: Vec<usize> = outcome.stats.iter().map(|s| s.labels).collect();
        assert!(labels.windows(2).all(|w| w[1] >= w[0]));
        assert!(labels.last().unwrap() > &labels[0]);
    }

    #[test]
    fn max_steps_respected() {
        let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let outcome = Engine::sequential().iterate_with_limits(&mis, 1, 64);
        assert!(matches!(outcome.stopped, StopReason::MaxSteps) || outcome.stats.len() <= 2);
        assert!(outcome.stats.len() <= 2);
    }

    #[test]
    fn trivial_problem_is_fixed_point() {
        // One self-compatible label: R̄(R(·)) keeps the problem trivial.
        let p = Problem::from_text("A A", "A A").unwrap();
        let outcome = Engine::sequential().iterate_with_limits(&p, 3, 20);
        assert!(outcome.reached_fixed_point());
    }

    fn render_outcome(o: &IterationOutcome) -> String {
        let rendered: Vec<String> = o.problems.iter().map(Problem::render).collect();
        format!("{:?}\n{:?}\n{}", o.stats, o.stopped, rendered.join("\n---\n"))
    }

    #[test]
    fn memoized_iteration_matches_unmemoized_reference() {
        for (node, edge) in
            [("O I I I", "[O I] I"), ("M M M\nP O O", "M [P O]\nO O"), ("A A", "A A")]
        {
            let p = Problem::from_text(node, edge).unwrap();
            let reference = render_outcome(&iterate_rr_unmemoized(&p, 6, 20, &Pool::sequential()));
            let memoized = render_outcome(&Engine::sequential().iterate_with_limits(&p, 6, 20));
            assert_eq!(memoized, reference, "problem: {node} / {edge}");
        }
    }

    #[test]
    fn cache_hits_share_the_index_and_change_nothing() {
        let p = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let cache = SubIndexCache::new();
        let first = cache.get_or_build(p.node());
        let second = cache.get_or_build(p.node());
        assert!(Arc::ptr_eq(&first, &second), "a hit must share the built index");
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert_eq!(first.len(), p.node().sub_multiset_index().len());
    }

    #[test]
    fn cache_epoch_reset_respects_capacity() {
        let cache = SubIndexCache::with_capacity(2);
        let constraints = ["A A", "A B", "B B"].map(|e| {
            let p = Problem::from_text("A A\nB B", e).unwrap();
            p.edge().clone()
        });
        for c in &constraints {
            cache.get_or_build(c);
        }
        // Third insert overflowed capacity 2: the map was cleared first.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn replacing_a_resident_key_at_capacity_does_not_epoch_reset() {
        // A racing duplicate build re-inserts a key the full shard already
        // holds; that replacement must not clear the shard (it cannot grow
        // it), while a genuinely new key at capacity still resets.
        let cache = SubIndexCache::with_capacity(2);
        let constraints = ["A A", "A B", "B B"].map(|e| {
            let p = Problem::from_text("A A\nB B", e).unwrap();
            p.edge().clone()
        });
        let a = cache.get_or_build(&constraints[0]);
        cache.get_or_build(&constraints[1]);
        assert_eq!(cache.len(), 2);
        cache.insert(constraints[0].clone(), Arc::clone(&a));
        assert_eq!(cache.len(), 2, "replacement cleared the shard");
        cache.insert(constraints[2].clone(), Arc::clone(&a));
        assert_eq!(cache.len(), 1, "a new key at capacity must epoch-reset");
    }

    #[test]
    fn hit_path_returns_without_owning_the_key() {
        // `lookup` takes the constraint by reference and a hit comes back
        // as a shared `Arc`; `get_or_build` must answer a second call from
        // `lookup` alone (hits == 1) so only the first (miss) call pays
        // the `constraint.clone()` insert.
        let p = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let cache = SubIndexCache::new();
        let built = cache.get_or_build(p.node());
        let hit = cache.lookup(p.node()).expect("must be resident");
        assert!(Arc::ptr_eq(&built, &hit));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn sharded_cache_shares_across_threads_without_output_drift() {
        let p = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let reference = p.node().sub_multiset_index();
        for shards in [1usize, 4, 16] {
            let cache = Arc::new(SubIndexCache::sharded(shards, 64));
            assert_eq!(cache.shard_count(), shards);
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let constraint = p.node().clone();
                    std::thread::spawn(move || cache.get_or_build(&constraint).len())
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), reference.len(), "shards = {shards}");
            }
            // Every thread either hit or missed; at most one entry exists
            // (duplicate racing builds insert the same bytes).
            assert_eq!(cache.hits() + cache.misses(), 4, "shards = {shards}");
            assert_eq!(cache.len(), 1, "shards = {shards}");
            assert!(cache.misses() >= 1, "someone had to build: shards = {shards}");
        }
    }

    #[test]
    fn fixed_point_confirmation_hits_the_cache() {
        // Sinkless orientation: the confirming step recomputes the same
        // problem, so its R(Π) node constraint repeats exactly and the
        // cache-served path must score a hit while matching the
        // reference. (Alphabet *names* grow each step — the
        // provenance-set display — but the cache keys on the name-free
        // `Constraint`, which repeats exactly at the fixed point.)
        let so = Problem::from_text("O I I", "[O I] I").unwrap();
        let pool = Pool::sequential();
        let cache = SubIndexCache::new();
        let mut current = so.drop_unused_labels().0;
        for step in 0..2 {
            let r = r_step(&current).unwrap();
            let index = cache.get_or_build(r.problem.node());
            let rr = crate::roundelim::rbar_step_indexed(&r.problem, &index, &pool).unwrap();
            let (reduced, _) = rr.problem.drop_unused_labels();
            assert!(iso::isomorphic(&reduced, &current), "step {step} left the fixed point");
            current = reduced;
        }
        assert_eq!(cache.hits(), 1, "the confirming step must reuse the index");
        assert_eq!(cache.misses(), 1);
    }
}
