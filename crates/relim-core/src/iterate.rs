//! Iterated round elimination with bookkeeping.
//!
//! Drives `Π ↦ R̄(R(Π))` repeatedly, recording description sizes and
//! detecting fixed points — the workflow behind both the "doubly
//! exponential growth" observation (paper §1.2, experiment E13) and
//! fixed-point lower bounds (§1.2, "Fixed points").
//!
//! ## Cross-step memoization
//!
//! Each `R̄` application starts by building the **sub-multiset index** of
//! the node constraint it universally quantifies over — a pure function of
//! that constraint. Fixed-point searches recompute steps on recurring
//! problems (the confirming step at a fixed point, repeated probes of the
//! same problem), so the session API ([`crate::engine::Engine::iterate`])
//! serves the index from a [`SubIndexCache`]: an exact-match cache from
//! node constraints to `Arc`-shared indices, owned by the `Engine` and
//! shared across *all* of its calls. Cache hits skip the enumeration work
//! of rebuilding the index and are **byte-identical** to cache misses
//! (the index content is fully determined by the constraint) — pinned by
//! [`iterate_rr_unmemoized`], the memoization-off reference path the
//! differential suite compares against.

use crate::constraint::{Constraint, SubMultisetIndex};
use crate::iso;
use crate::problem::Problem;
use crate::roundelim::{r_step, rbar_step_pooled, Step};
use relim_pool::Pool;
use std::collections::HashMap;
use std::sync::Arc;

/// Why an iteration stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The latest problem is isomorphic to the previous one.
    FixedPoint,
    /// The configured maximum number of steps was reached.
    MaxSteps,
    /// The alphabet exceeded `label_limit` (doubly-exponential growth).
    LabelLimit {
        /// Labels the next step would have had to handle.
        labels: usize,
    },
    /// A step produced an empty constraint.
    Degenerate {
        /// Engine error message.
        message: String,
    },
}

/// Description-size statistics for one problem in the iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepStats {
    /// Iteration index (0 = input problem).
    pub step: usize,
    /// Alphabet size (used labels only).
    pub labels: usize,
    /// Node configuration count.
    pub node_configs: usize,
    /// Edge configuration count.
    pub edge_configs: usize,
}

/// The outcome of an iterated round-elimination search
/// ([`crate::engine::Engine::iterate`] / [`iterate_rr_unmemoized`]).
#[derive(Debug, Clone)]
pub struct IterationOutcome {
    /// Per-step statistics, starting with the input problem.
    pub stats: Vec<StepStats>,
    /// The problems themselves (unused labels dropped), aligned with
    /// `stats`.
    pub problems: Vec<Problem>,
    /// Why the iteration stopped.
    pub stopped: StopReason,
}

impl IterationOutcome {
    /// Whether a fixed point was found.
    pub fn reached_fixed_point(&self) -> bool {
        self.stopped == StopReason::FixedPoint
    }
}

fn stats_of(step: usize, p: &Problem) -> StepStats {
    StepStats {
        step,
        labels: p.alphabet().len(),
        node_configs: p.node().len(),
        edge_configs: p.edge().len(),
    }
}

/// An exact-match cache from node constraints to their `Arc`-shared
/// sub-multiset indices, letting consecutive (or repeated) iteration
/// steps reuse the index enumeration work.
///
/// The index is a pure function of the constraint, so a hit is
/// byte-identical to a rebuild. The cache is bounded: when `capacity`
/// distinct constraints are held, the next insertion clears the map (an
/// epoch reset — simple, deterministic, and sufficient for fixed-point
/// searches whose working set is tiny).
#[derive(Debug, Clone)]
pub struct SubIndexCache {
    entries: HashMap<Constraint, Arc<SubMultisetIndex>>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl SubIndexCache {
    /// A cache holding up to 64 constraints.
    pub fn new() -> SubIndexCache {
        SubIndexCache::with_capacity(64)
    }

    /// A cache holding up to `capacity` constraints (at least 1).
    pub fn with_capacity(capacity: usize) -> SubIndexCache {
        SubIndexCache { entries: HashMap::new(), capacity: capacity.max(1), hits: 0, misses: 0 }
    }

    /// The index for `constraint`, shared from the cache or built (and
    /// cached) on a miss.
    pub fn get_or_build(&mut self, constraint: &Constraint) -> Arc<SubMultisetIndex> {
        if let Some(index) = self.lookup(constraint) {
            return index;
        }
        let index = Arc::new(constraint.sub_multiset_index());
        self.insert(constraint.clone(), Arc::clone(&index));
        index
    }

    /// The cached index for `constraint`, if held; counts a hit or a miss.
    /// Split out from [`SubIndexCache::get_or_build`] so a caller (the
    /// [`crate::engine::Engine`]) can build outside its cache lock.
    pub fn lookup(&mut self, constraint: &Constraint) -> Option<Arc<SubMultisetIndex>> {
        match self.entries.get(constraint) {
            Some(index) => {
                self.hits += 1;
                Some(Arc::clone(index))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a built index, clearing the map first when `capacity`
    /// distinct constraints are already held (the epoch reset).
    pub fn insert(&mut self, constraint: Constraint, index: Arc<SubMultisetIndex>) {
        if self.entries.len() >= self.capacity {
            self.entries.clear();
        }
        self.entries.insert(constraint, index);
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to build the index.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct constraints currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for SubIndexCache {
    fn default() -> Self {
        SubIndexCache::new()
    }
}

/// The memoization-off reference for [`crate::engine::Engine::iterate`]:
/// every step rebuilds its sub-multiset index from scratch, with no
/// session state anywhere. Exists so differential tests can pin that the
/// memoized path changes nothing; not deprecated on purpose.
pub fn iterate_rr_unmemoized(
    p: &Problem,
    max_steps: usize,
    label_limit: usize,
    pool: &Pool,
) -> IterationOutcome {
    iterate_with_step(p, max_steps, label_limit, |prev| {
        let r = r_step(prev)?;
        let rr = rbar_step_pooled(&r.problem, pool)?;
        Ok((r, rr))
    })
}

/// The shared iteration loop, parameterized over how one step is computed
/// (the engine passes its cache-serving session step).
pub(crate) fn iterate_with_step(
    p: &Problem,
    max_steps: usize,
    label_limit: usize,
    mut step_fn: impl FnMut(&Problem) -> crate::error::Result<(Step, Step)>,
) -> IterationOutcome {
    let (current, _) = p.drop_unused_labels();
    let mut problems = vec![current];
    let mut stats = vec![stats_of(0, &problems[0])];
    for step in 1..=max_steps {
        let prev = problems.last().expect("non-empty").clone();
        if prev.alphabet().len() > label_limit {
            return IterationOutcome {
                stats,
                problems,
                stopped: StopReason::LabelLimit { labels: prev.alphabet().len() },
            };
        }
        match step_fn(&prev) {
            Ok((_, rr)) => {
                let (reduced, _) = rr.problem.drop_unused_labels();
                let fixed = iso::isomorphic(&reduced, &prev);
                stats.push(stats_of(step, &reduced));
                problems.push(reduced);
                if fixed {
                    return IterationOutcome { stats, problems, stopped: StopReason::FixedPoint };
                }
            }
            Err(crate::error::RelimError::TooManyLabels { requested }) => {
                return IterationOutcome {
                    stats,
                    problems,
                    stopped: StopReason::LabelLimit { labels: requested },
                }
            }
            Err(e) => {
                return IterationOutcome {
                    stats,
                    problems,
                    stopped: StopReason::Degenerate { message: e.to_string() },
                }
            }
        }
    }
    IterationOutcome { stats, problems, stopped: StopReason::MaxSteps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn sinkless_orientation_fixed_point_detected() {
        let so = Problem::from_text("O I I I", "[O I] I").unwrap();
        let outcome = Engine::sequential().iterate_with_limits(&so, 4, 20);
        assert!(outcome.reached_fixed_point());
        // Sizes stable across the confirming step.
        assert_eq!(outcome.stats[0].labels, outcome.stats[1].labels);
    }

    #[test]
    fn mis_growth_hits_label_limit() {
        let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let outcome = Engine::sequential().iterate_with_limits(&mis, 10, 20);
        assert!(matches!(outcome.stopped, StopReason::LabelLimit { .. }));
        // Strictly growing label counts before the stop.
        let labels: Vec<usize> = outcome.stats.iter().map(|s| s.labels).collect();
        assert!(labels.windows(2).all(|w| w[1] >= w[0]));
        assert!(labels.last().unwrap() > &labels[0]);
    }

    #[test]
    fn max_steps_respected() {
        let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let outcome = Engine::sequential().iterate_with_limits(&mis, 1, 64);
        assert!(matches!(outcome.stopped, StopReason::MaxSteps) || outcome.stats.len() <= 2);
        assert!(outcome.stats.len() <= 2);
    }

    #[test]
    fn trivial_problem_is_fixed_point() {
        // One self-compatible label: R̄(R(·)) keeps the problem trivial.
        let p = Problem::from_text("A A", "A A").unwrap();
        let outcome = Engine::sequential().iterate_with_limits(&p, 3, 20);
        assert!(outcome.reached_fixed_point());
    }

    fn render_outcome(o: &IterationOutcome) -> String {
        let rendered: Vec<String> = o.problems.iter().map(Problem::render).collect();
        format!("{:?}\n{:?}\n{}", o.stats, o.stopped, rendered.join("\n---\n"))
    }

    #[test]
    fn memoized_iteration_matches_unmemoized_reference() {
        for (node, edge) in
            [("O I I I", "[O I] I"), ("M M M\nP O O", "M [P O]\nO O"), ("A A", "A A")]
        {
            let p = Problem::from_text(node, edge).unwrap();
            let reference = render_outcome(&iterate_rr_unmemoized(&p, 6, 20, &Pool::sequential()));
            let memoized = render_outcome(&Engine::sequential().iterate_with_limits(&p, 6, 20));
            assert_eq!(memoized, reference, "problem: {node} / {edge}");
        }
    }

    #[test]
    fn cache_hits_share_the_index_and_change_nothing() {
        let p = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let mut cache = SubIndexCache::new();
        let first = cache.get_or_build(p.node());
        let second = cache.get_or_build(p.node());
        assert!(Arc::ptr_eq(&first, &second), "a hit must share the built index");
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert_eq!(first.len(), p.node().sub_multiset_index().len());
    }

    #[test]
    fn cache_epoch_reset_respects_capacity() {
        let mut cache = SubIndexCache::with_capacity(2);
        let constraints = ["A A", "A B", "B B"].map(|e| {
            let p = Problem::from_text("A A\nB B", e).unwrap();
            p.edge().clone()
        });
        for c in &constraints {
            cache.get_or_build(c);
        }
        // Third insert overflowed capacity 2: the map was cleared first.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn fixed_point_confirmation_hits_the_cache() {
        // Sinkless orientation: the confirming step recomputes the same
        // problem, so its R(Π) node constraint repeats exactly and the
        // cache-served path must score a hit while matching the
        // reference. (Alphabet *names* grow each step — the
        // provenance-set display — but the cache keys on the name-free
        // `Constraint`, which repeats exactly at the fixed point.)
        let so = Problem::from_text("O I I", "[O I] I").unwrap();
        let pool = Pool::sequential();
        let mut cache = SubIndexCache::new();
        let mut current = so.drop_unused_labels().0;
        for step in 0..2 {
            let r = r_step(&current).unwrap();
            let index = cache.get_or_build(r.problem.node());
            let rr = crate::roundelim::rbar_step_indexed(&r.problem, &index, &pool).unwrap();
            let (reduced, _) = rr.problem.drop_unused_labels();
            assert!(iso::isomorphic(&reduced, &current), "step {step} left the fixed point");
            current = reduced;
        }
        assert_eq!(cache.hits(), 1, "the confirming step must reuse the index");
        assert_eq!(cache.misses(), 1);
    }
}
