//! Iterated round elimination with bookkeeping.
//!
//! Drives `Π ↦ R̄(R(Π))` repeatedly, recording description sizes and
//! detecting fixed points — the workflow behind both the "doubly
//! exponential growth" observation (paper §1.2, experiment E13) and
//! fixed-point lower bounds (§1.2, "Fixed points").

use crate::iso;
use crate::problem::Problem;
use crate::roundelim::rr_step_with;
use relim_pool::Pool;

/// Why an iteration stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The latest problem is isomorphic to the previous one.
    FixedPoint,
    /// The configured maximum number of steps was reached.
    MaxSteps,
    /// The alphabet exceeded `label_limit` (doubly-exponential growth).
    LabelLimit {
        /// Labels the next step would have had to handle.
        labels: usize,
    },
    /// A step produced an empty constraint.
    Degenerate {
        /// Engine error message.
        message: String,
    },
}

/// Description-size statistics for one problem in the iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepStats {
    /// Iteration index (0 = input problem).
    pub step: usize,
    /// Alphabet size (used labels only).
    pub labels: usize,
    /// Node configuration count.
    pub node_configs: usize,
    /// Edge configuration count.
    pub edge_configs: usize,
}

/// The outcome of [`iterate_rr`].
#[derive(Debug, Clone)]
pub struct IterationOutcome {
    /// Per-step statistics, starting with the input problem.
    pub stats: Vec<StepStats>,
    /// The problems themselves (unused labels dropped), aligned with
    /// `stats`.
    pub problems: Vec<Problem>,
    /// Why the iteration stopped.
    pub stopped: StopReason,
}

impl IterationOutcome {
    /// Whether a fixed point was found.
    pub fn reached_fixed_point(&self) -> bool {
        self.stopped == StopReason::FixedPoint
    }
}

fn stats_of(step: usize, p: &Problem) -> StepStats {
    StepStats {
        step,
        labels: p.alphabet().len(),
        node_configs: p.node().len(),
        edge_configs: p.edge().len(),
    }
}

/// Iterates `R̄(R(·))` from `p`, up to `max_steps` applications, aborting
/// before any step whose input alphabet exceeds `label_limit`.
///
/// # Example
///
/// ```
/// use relim_core::{iterate, Problem};
///
/// // Sinkless orientation (fixed-point encoding) at Δ = 3.
/// let so = Problem::from_text("O I I", "[O I] I").unwrap();
/// let outcome = iterate::iterate_rr(&so, 5, 20);
/// assert!(outcome.reached_fixed_point());
/// assert_eq!(outcome.stats.len(), 2); // input + one confirming step
/// ```
pub fn iterate_rr(p: &Problem, max_steps: usize, label_limit: usize) -> IterationOutcome {
    iterate_rr_with(p, max_steps, label_limit, &Pool::sequential())
}

/// [`iterate_rr`] with each `R̄(R(·))` application sharded over `pool`.
/// Outcome is byte-identical to [`iterate_rr`] at any thread count.
pub fn iterate_rr_with(
    p: &Problem,
    max_steps: usize,
    label_limit: usize,
    pool: &Pool,
) -> IterationOutcome {
    let (current, _) = p.drop_unused_labels();
    let mut problems = vec![current];
    let mut stats = vec![stats_of(0, &problems[0])];
    for step in 1..=max_steps {
        let prev = problems.last().expect("non-empty").clone();
        if prev.alphabet().len() > label_limit {
            return IterationOutcome {
                stats,
                problems,
                stopped: StopReason::LabelLimit { labels: prev.alphabet().len() },
            };
        }
        match rr_step_with(&prev, pool) {
            Ok((_, rr)) => {
                let (reduced, _) = rr.problem.drop_unused_labels();
                let fixed = iso::isomorphic(&reduced, &prev);
                stats.push(stats_of(step, &reduced));
                problems.push(reduced);
                if fixed {
                    return IterationOutcome { stats, problems, stopped: StopReason::FixedPoint };
                }
            }
            Err(crate::error::RelimError::TooManyLabels { requested }) => {
                return IterationOutcome {
                    stats,
                    problems,
                    stopped: StopReason::LabelLimit { labels: requested },
                }
            }
            Err(e) => {
                return IterationOutcome {
                    stats,
                    problems,
                    stopped: StopReason::Degenerate { message: e.to_string() },
                }
            }
        }
    }
    IterationOutcome { stats, problems, stopped: StopReason::MaxSteps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinkless_orientation_fixed_point_detected() {
        let so = Problem::from_text("O I I I", "[O I] I").unwrap();
        let outcome = iterate_rr(&so, 4, 20);
        assert!(outcome.reached_fixed_point());
        // Sizes stable across the confirming step.
        assert_eq!(outcome.stats[0].labels, outcome.stats[1].labels);
    }

    #[test]
    fn mis_growth_hits_label_limit() {
        let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let outcome = iterate_rr(&mis, 10, 20);
        assert!(matches!(outcome.stopped, StopReason::LabelLimit { .. }));
        // Strictly growing label counts before the stop.
        let labels: Vec<usize> = outcome.stats.iter().map(|s| s.labels).collect();
        assert!(labels.windows(2).all(|w| w[1] >= w[0]));
        assert!(labels.last().unwrap() > &labels[0]);
    }

    #[test]
    fn max_steps_respected() {
        let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let outcome = iterate_rr(&mis, 1, 64);
        assert!(matches!(outcome.stopped, StopReason::MaxSteps) || outcome.stats.len() <= 2);
        assert!(outcome.stats.len() <= 2);
    }

    #[test]
    fn trivial_problem_is_fixed_point() {
        // One self-compatible label: R̄(R(·)) keeps the problem trivial.
        let p = Problem::from_text("A A", "A A").unwrap();
        let outcome = iterate_rr(&p, 3, 20);
        assert!(outcome.reached_fixed_point());
    }
}
