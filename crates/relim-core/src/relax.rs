//! Relaxations of configurations (paper Definition 7).
//!
//! A configuration of label sets `Y₁ … Y_Δ` *can be relaxed to*
//! `Z₁ … Z_Δ` if there is a permutation `ρ` with `Y_i ⊆ Z_ρ(i)` for all
//! `i`. Lemma 8 of the paper rests on showing that every node configuration
//! of `R̄(R(Π_Δ(a,x)))` can be relaxed to a configuration of the fixed
//! problem `Π_rel`; this module provides that check as executable code.

use crate::config::SetConfig;
use crate::line::Line;
use crate::matching::assign_positions;

/// Whether `from` can be relaxed to `to` (Definition 7): a perfect matching
/// pairing each `from`-position with a distinct `to`-position such that
/// `from_i ⊆ to_j`.
///
/// # Example
///
/// ```
/// use relim_core::{relax, Label, LabelSet, SetConfig};
///
/// let a = LabelSet::singleton(Label::new(0));
/// let ab = a.with(Label::new(1));
/// let from = SetConfig::new(vec![a, a]);
/// let to = SetConfig::new(vec![ab, a]);
/// assert!(relax::config_relaxes_to(&from, &to));
/// assert!(!relax::config_relaxes_to(&to, &from));
/// ```
pub fn config_relaxes_to(from: &SetConfig, to: &SetConfig) -> bool {
    if from.degree() != to.degree() {
        return false;
    }
    let to_sets = to.as_slice();
    let options: Vec<u64> = from
        .as_slice()
        .iter()
        .map(|&y| {
            let mut mask = 0u64;
            for (j, &z) in to_sets.iter().enumerate() {
                if y.is_subset_of(z) {
                    mask |= 1 << j;
                }
            }
            mask
        })
        .collect();
    let caps = vec![1u32; to_sets.len()];
    assign_positions(&options, &caps).is_some()
}

/// Whether `from` can be relaxed into the condensed line `to_line`, where
/// each group of the line is a *set-of-labels slot with multiplicity*: the
/// matching pairs each `from`-position with a group whose set is a superset.
///
/// This is the line-level version of [`config_relaxes_to`], matching how the
/// paper writes `Π_rel` as condensed configurations.
pub fn config_relaxes_to_line(from: &SetConfig, to_line: &Line) -> bool {
    if from.degree() != to_line.degree() {
        return false;
    }
    let groups = to_line.groups();
    let options: Vec<u64> = from
        .as_slice()
        .iter()
        .map(|&y| {
            let mut mask = 0u64;
            for (g, &(set, _)) in groups.iter().enumerate() {
                if y.is_subset_of(set) {
                    mask |= 1 << g;
                }
            }
            mask
        })
        .collect();
    let caps: Vec<u32> = groups.iter().map(|&(_, m)| m).collect();
    assign_positions(&options, &caps).is_some()
}

/// Finds, for each configuration in `from`, a line of `to_lines` it relaxes
/// into; returns the per-configuration line index, or the index of the first
/// configuration with no relaxation.
///
/// # Errors
///
/// On failure returns the offending configuration.
pub fn all_relax_to_lines<'a, I>(from: I, to_lines: &[Line]) -> Result<Vec<usize>, SetConfig>
where
    I: IntoIterator<Item = &'a SetConfig>,
{
    let mut assignments = Vec::new();
    for cfg in from {
        match to_lines.iter().position(|line| config_relaxes_to_line(cfg, line)) {
            Some(idx) => assignments.push(idx),
            None => return Err(cfg.clone()),
        }
    }
    Ok(assignments)
}

/// Produces the relaxed configuration: positions of `from` matched into the
/// groups of `to_line`, each replaced by the group's (superset) label set.
/// Returns `None` when no relaxation exists.
pub fn relax_into_line(from: &SetConfig, to_line: &Line) -> Option<SetConfig> {
    if from.degree() != to_line.degree() {
        return None;
    }
    let groups = to_line.groups();
    let options: Vec<u64> = from
        .as_slice()
        .iter()
        .map(|&y| {
            let mut mask = 0u64;
            for (g, &(set, _)) in groups.iter().enumerate() {
                if y.is_subset_of(set) {
                    mask |= 1 << g;
                }
            }
            mask
        })
        .collect();
    let caps: Vec<u32> = groups.iter().map(|&(_, m)| m).collect();
    let assignment = assign_positions(&options, &caps)?;
    Some(SetConfig::new(assignment.into_iter().map(|g| groups[g].0).collect()))
}

/// Convenience: every `from`-set is a subset of the corresponding set in the
/// result, which is drawn from `to_line`'s groups.
pub fn is_valid_relaxation(from: &SetConfig, relaxed: &SetConfig) -> bool {
    config_relaxes_to(from, relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::labelset::LabelSet;

    fn ls(bits: u32) -> LabelSet {
        LabelSet::from_bits(bits)
    }

    #[test]
    fn degree_mismatch() {
        let a = SetConfig::new(vec![ls(1)]);
        let b = SetConfig::new(vec![ls(1), ls(1)]);
        assert!(!config_relaxes_to(&a, &b));
    }

    #[test]
    fn permutation_needed() {
        // from = ({A}, {B}); to = ({B,C}, {A,C}) — needs the swap.
        let from = SetConfig::new(vec![ls(0b001), ls(0b010)]);
        let to = SetConfig::new(vec![ls(0b110), ls(0b101)]);
        assert!(config_relaxes_to(&from, &to));
    }

    #[test]
    fn line_relaxation_with_multiplicity() {
        // Line: [ABC]^2 [A]^1; from = ({A},{B},{A}).
        let line = Line::new(vec![(ls(0b111), 2), (ls(0b001), 1)]).unwrap();
        let from = SetConfig::new(vec![ls(0b001), ls(0b010), ls(0b001)]);
        assert!(config_relaxes_to_line(&from, &line));
        // from = ({B},{B},{B}) cannot: only two positions accept B.
        let bad = SetConfig::new(vec![ls(0b010), ls(0b010), ls(0b010)]);
        assert!(!config_relaxes_to_line(&bad, &line));
    }

    #[test]
    fn relax_into_line_produces_supersets() {
        let line = Line::new(vec![(ls(0b111), 1), (ls(0b011), 1)]).unwrap();
        let from = SetConfig::new(vec![ls(0b001), ls(0b100)]);
        let relaxed = relax_into_line(&from, &line).unwrap();
        assert!(is_valid_relaxation(&from, &relaxed));
        // {C}=0b100 must land in the [ABC] group.
        assert!(relaxed.as_slice().contains(&ls(0b111)));
    }

    #[test]
    fn all_relax_reports_offender() {
        let line = Line::new(vec![(ls(0b001), 2)]).unwrap();
        let good = SetConfig::new(vec![ls(0b001), ls(0b001)]);
        let bad = SetConfig::new(vec![ls(0b010), ls(0b001)]);
        let res = all_relax_to_lines([&good, &bad], std::slice::from_ref(&line));
        assert_eq!(res.unwrap_err(), bad);
        let _ = Label::new(0);
    }
}
