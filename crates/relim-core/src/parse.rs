//! Text format for constraints and problems.
//!
//! The grammar, one condensed configuration per non-empty line:
//!
//! ```text
//! line    := token+
//! token   := atom exponent?
//! atom    := NAME | '[' NAME+ ']'
//! exponent:= '^' UINT
//! NAME    := [A-Za-z0-9_'+-]+
//! ```
//!
//! Examples: `M M M`, `P O^2`, `M [P O]`, `[M X]^3 A`.
//! Lines starting with `#` are comments.

use crate::constraint::Constraint;
use crate::error::{RelimError, Result};
use crate::label::Alphabet;
use crate::labelset::LabelSet;
use crate::line::Line;
use crate::problem::Problem;

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '\'' | '+' | '-')
}

/// One parsed token: a disjunction of names with a multiplicity.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RawToken {
    names: Vec<String>,
    mult: u32,
}

fn parse_line_tokens(line: &str) -> Result<Vec<RawToken>> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let Some(&c) = chars.peek() else { break };
        let names = if c == '[' {
            chars.next();
            let mut names = Vec::new();
            loop {
                while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
                    chars.next();
                }
                match chars.peek() {
                    Some(']') => {
                        chars.next();
                        break;
                    }
                    Some(&c) if is_name_char(c) => {
                        let mut name = String::new();
                        while matches!(chars.peek(), Some(&c) if is_name_char(c)) {
                            name.push(chars.next().expect("peeked"));
                        }
                        names.push(name);
                    }
                    other => {
                        return Err(RelimError::Parse {
                            message: format!("unexpected {other:?} inside disjunction in `{line}`"),
                        })
                    }
                }
            }
            if names.is_empty() {
                return Err(RelimError::Parse {
                    message: format!("empty disjunction `[]` in `{line}`"),
                });
            }
            names
        } else if is_name_char(c) {
            let mut name = String::new();
            while matches!(chars.peek(), Some(&c) if is_name_char(c)) {
                name.push(chars.next().expect("peeked"));
            }
            vec![name]
        } else {
            return Err(RelimError::Parse {
                message: format!("unexpected character `{c}` in `{line}`"),
            });
        };
        // Optional exponent.
        let mut mult = 1u32;
        if matches!(chars.peek(), Some('^')) {
            chars.next();
            let mut digits = String::new();
            while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
                digits.push(chars.next().expect("peeked"));
            }
            mult = digits.parse().map_err(|_| RelimError::Parse {
                message: format!("bad exponent after `^` in `{line}`"),
            })?;
            if mult == 0 {
                return Err(RelimError::Parse { message: format!("zero exponent in `{line}`") });
            }
        }
        tokens.push(RawToken { names, mult });
    }
    if tokens.is_empty() {
        return Err(RelimError::Parse { message: format!("empty configuration line `{line}`") });
    }
    Ok(tokens)
}

fn content_lines(text: &str) -> impl Iterator<Item = &str> {
    text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#'))
}

/// Collects all label names appearing in the text, in order of first
/// appearance.
pub(crate) fn collect_names(texts: &[&str]) -> Result<Vec<String>> {
    let mut names: Vec<String> = Vec::new();
    for text in texts {
        for line in content_lines(text) {
            for tok in parse_line_tokens(line)? {
                for name in tok.names {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    Ok(names)
}

/// Parses a constraint against an existing alphabet.
///
/// # Errors
///
/// Fails on syntax errors, unknown labels, or degree mismatches between
/// lines.
///
/// # Example
///
/// ```
/// use relim_core::{Alphabet, parse};
///
/// let alpha = Alphabet::new(&["M", "P", "O"]).unwrap();
/// let c = parse::parse_constraint("M M M\nP O^2", &alpha).unwrap();
/// assert_eq!(c.degree(), 3);
/// assert_eq!(c.len(), 2);
/// ```
pub fn parse_constraint(text: &str, alphabet: &Alphabet) -> Result<Constraint> {
    let lines = parse_lines(text, alphabet)?;
    Constraint::from_lines(&lines)
}

/// Parses the condensed lines of a constraint without expanding them.
///
/// # Errors
///
/// Fails on syntax errors or unknown labels.
pub fn parse_lines(text: &str, alphabet: &Alphabet) -> Result<Vec<Line>> {
    let mut lines = Vec::new();
    for raw in content_lines(text) {
        let tokens = parse_line_tokens(raw)?;
        let mut groups = Vec::new();
        for tok in tokens {
            let mut set = LabelSet::EMPTY;
            for name in &tok.names {
                set = set.with(alphabet.label(name)?);
            }
            groups.push((set, tok.mult));
        }
        lines.push(Line::new(groups)?);
    }
    Ok(lines)
}

/// Parses a full problem; the alphabet is inferred from the order of first
/// appearance across the node then edge text.
///
/// # Errors
///
/// Fails on syntax errors, degree inconsistencies, or a non-2 edge degree.
///
/// # Example
///
/// ```
/// use relim_core::parse;
///
/// let p = parse::parse_problem("M M M\nP O O", "M [P O]\nO O").unwrap();
/// assert_eq!(p.alphabet().names(), &["M".to_string(), "P".into(), "O".into()]);
/// ```
pub fn parse_problem(node_text: &str, edge_text: &str) -> Result<Problem> {
    let names = collect_names(&[node_text, edge_text])?;
    let alphabet = Alphabet::new(&names)?;
    let node = parse_constraint(node_text, &alphabet)?;
    let edge = parse_constraint(edge_text, &alphabet)?;
    Problem::new(alphabet, node, edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::label::Label;

    #[test]
    fn token_forms() {
        let toks = parse_line_tokens("M [P O]^2 X^3").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], RawToken { names: vec!["M".into()], mult: 1 });
        assert_eq!(toks[1], RawToken { names: vec!["P".into(), "O".into()], mult: 2 });
        assert_eq!(toks[2], RawToken { names: vec!["X".into()], mult: 3 });
    }

    #[test]
    fn parse_errors() {
        assert!(parse_line_tokens("").is_err());
        assert!(parse_line_tokens("[ ]").is_err());
        assert!(parse_line_tokens("M^0").is_err());
        assert!(parse_line_tokens("M^").is_err());
        assert!(parse_line_tokens("M ]").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let alpha = Alphabet::new(&["A"]).unwrap();
        let c = parse_constraint("# header\n\nA A\n  \n# trailing", &alpha).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn degree_mismatch_between_lines() {
        let alpha = Alphabet::new(&["A"]).unwrap();
        assert!(parse_constraint("A A\nA A A", &alpha).is_err());
    }

    #[test]
    fn unknown_label() {
        let alpha = Alphabet::new(&["A"]).unwrap();
        assert!(matches!(parse_constraint("A B", &alpha), Err(RelimError::UnknownLabel { .. })));
    }

    #[test]
    fn full_problem_alphabet_order() {
        let p = parse_problem("M M\nP O", "M [P O]\nO O").unwrap();
        assert_eq!(p.alphabet().names(), &["M".to_string(), "P".into(), "O".into()]);
        // Expansion: M[PO] = {MP, MO}.
        let m = Label::new(0);
        let pp = Label::new(1);
        let o = Label::new(2);
        assert!(p.edge().contains(&Config::new(vec![m, pp])));
        assert!(p.edge().contains(&Config::new(vec![m, o])));
        assert!(p.edge().contains(&Config::new(vec![o, o])));
        assert_eq!(p.edge().len(), 3);
    }

    #[test]
    fn exponent_disjunction_expansion() {
        let p = parse_problem("[A B]^2", "A B").unwrap();
        // {AA, AB, BB}
        assert_eq!(p.node().len(), 3);
    }
}
