//! Per-worker scratch arenas for the round-elimination hot loop.
//!
//! The universal-side DFS ([`crate::roundelim`]) repeatedly needs the same
//! short-lived buffers: one frontier `Vec<Config>` per recursion depth, a
//! chosen-candidate stack, and per-configuration signature keys for the
//! dominance filter. Allocating them per call (let alone per candidate)
//! dominated the allocator profile. This module keeps one [`ScratchArena`]
//! per thread — pool workers are persistent ([`relim_pool::Pool`]), so the
//! thread-local is per *worker* and warm after the first task — and the hot
//! loop borrows buffers from it, clearing instead of freeing.
//!
//! Access goes through [`with_scratch`], which `take`s the arena out of
//! the thread-local cell and puts it back afterwards: a re-entrant call
//! (e.g. a differential test driving the sequential reference from inside
//! a pooled task) simply observes a fresh default arena instead of
//! aliasing buffers, so the pattern is panic- and reentrancy-safe without
//! runtime borrow failures.

use crate::config::Config;
use crate::labelset::LabelSet;
use std::cell::RefCell;

/// Reusable buffers for one worker thread.
///
/// All buffers are logically empty between top-level uses (callers clear
/// before use, not after), but retain their heap capacity — the second and
/// every later DFS on a worker runs allocation-free in the common case.
#[derive(Default)]
pub(crate) struct ScratchArena {
    /// Depth-indexed DFS frontiers: `frontiers[d]` holds the deduplicated
    /// partial-choice multisets after `d` candidates have been chosen.
    /// Indexed by recursion depth so sibling subtrees reuse the same
    /// buffer; entries are `mem::take`-swapped while a depth is active.
    pub frontiers: Vec<Vec<Config>>,
    /// The candidate sets chosen along the current DFS path.
    pub chosen: Vec<LabelSet>,
}

impl ScratchArena {
    /// Ensures the frontier pool covers depths `0..=depth`.
    pub fn ensure_depth(&mut self, depth: usize) {
        if self.frontiers.len() <= depth {
            self.frontiers.resize_with(depth + 1, Vec::new);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<ScratchArena> = RefCell::new(ScratchArena::default());
}

/// Runs `f` with this thread's scratch arena.
///
/// The arena is moved out of the cell for the duration of `f`; nested
/// calls get an independent (fresh) arena rather than a panic, and the
/// outer arena is restored afterwards.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut ScratchArena) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut arena = cell.take();
        let out = f(&mut arena);
        cell.replace(arena);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_retains_capacity_between_uses() {
        let cap = with_scratch(|a| {
            a.ensure_depth(3);
            a.frontiers[2].reserve(100);
            a.frontiers[2].capacity()
        });
        assert!(cap >= 100);
        let cap_again = with_scratch(|a| a.frontiers[2].capacity());
        assert!(cap_again >= 100, "capacity lost between uses: {cap_again}");
    }

    #[test]
    fn nested_use_sees_a_fresh_arena_and_restores_the_outer() {
        with_scratch(|outer| {
            outer.chosen.push(LabelSet::from_bits(0b1));
            with_scratch(|inner| {
                assert!(inner.chosen.is_empty(), "nested arena must be independent");
                inner.chosen.push(LabelSet::from_bits(0b10));
            });
            assert_eq!(outer.chosen.len(), 1);
        });
        // The outer arena was restored (with its buffers) when the closure
        // returned; the nested one was dropped.
        with_scratch(|a| {
            assert_eq!(a.chosen, vec![LabelSet::from_bits(0b1)]);
            a.chosen.clear();
        });
    }
}
