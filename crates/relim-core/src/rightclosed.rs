//! Enumeration of right-closed label sets (paper §2.3, Observation 4).
//!
//! Observation 4 (from Balliu–Brandt–Olivetti FOCS'20) states that every
//! label of `R(Π)` — i.e. every set appearing in the maximal configurations
//! of the "for-all" step — is right-closed with respect to the relevant
//! strength order. This lets the engine enumerate candidates over the
//! (usually few) right-closed sets instead of all `2^|Σ|` subsets.

use crate::diagram::StrengthOrder;
use crate::labelset::LabelSet;

/// All non-empty right-closed sets of the order, sorted by
/// `(cardinality, bitmask)` for deterministic output.
///
/// # Example
///
/// ```
/// use relim_core::{Problem, diagram::StrengthOrder, rightclosed::right_closed_sets};
///
/// let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
/// let order = StrengthOrder::of_constraint(mis.edge(), 3);
/// let sets = right_closed_sets(&order);
/// // For MIS the right-closed sets w.r.t. the edge diagram are
/// // {M}, {O}, {M,O}, {P,O}, {M,P,O} — but never {P} alone.
/// assert_eq!(sets.len(), 5);
/// ```
pub fn right_closed_sets(order: &StrengthOrder) -> Vec<LabelSet> {
    let n = order.len();
    assert!(n <= 22, "right-closed enumeration limited to 22 labels (2^22 subsets)");
    let mut out = Vec::new();
    for bits in 1u32..(1u32 << n) {
        let set = LabelSet::from_bits(bits);
        if order.is_right_closed(set) {
            out.push(set);
        }
    }
    out.sort_unstable_by_key(|s| (s.len(), s.bits()));
    out
}

/// Number of right-closed sets without materializing them.
pub fn count_right_closed(order: &StrengthOrder) -> usize {
    right_closed_sets(order).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    #[test]
    fn mis_right_closed_sets() {
        let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let order = StrengthOrder::of_constraint(mis.edge(), 3);
        let sets = right_closed_sets(&order);
        let a = mis.alphabet();
        let m = LabelSet::singleton(a.label("M").unwrap());
        let p = LabelSet::singleton(a.label("P").unwrap());
        let o = LabelSet::singleton(a.label("O").unwrap());
        assert!(sets.contains(&m));
        assert!(sets.contains(&o));
        assert!(!sets.contains(&p));
        assert!(sets.contains(&p.union(o)));
        assert!(sets.contains(&m.union(o)));
        assert!(sets.contains(&m.union(p).union(o)));
        assert_eq!(sets.len(), 5);
    }

    #[test]
    fn antichain_order_all_subsets_closed() {
        // A problem where no label is comparable: every subset right-closed.
        // Edge constraint {AB} only: A at-least-as-strong-as B iff replacing
        // B in AB gives AA which is absent => incomparable both ways.
        let p = Problem::from_text("A B", "A B").unwrap();
        let order = StrengthOrder::of_constraint(p.edge(), 2);
        assert_eq!(right_closed_sets(&order).len(), 3);
    }

    #[test]
    fn deterministic_ordering() {
        let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let order = StrengthOrder::of_constraint(mis.edge(), 3);
        let sets = right_closed_sets(&order);
        let mut sorted = sets.clone();
        sorted.sort_unstable_by_key(|s| (s.len(), s.bits()));
        assert_eq!(sets, sorted);
    }
}
