//! Error types for the round elimination engine.

use std::fmt;

/// Errors produced while constructing or manipulating problems.
///
/// # Example
///
/// ```
/// use relim_core::{Alphabet, RelimError};
///
/// let err = Alphabet::new(&(0..40).map(|i| format!("L{i}")).collect::<Vec<_>>())
///     .unwrap_err();
/// assert!(matches!(err, RelimError::TooManyLabels { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RelimError {
    /// The alphabet would exceed the engine's limit of 31 labels.
    TooManyLabels {
        /// Number of labels that was requested.
        requested: usize,
    },
    /// A label name appears twice in an alphabet.
    DuplicateLabel {
        /// The offending name.
        name: String,
    },
    /// A label name was not found in the alphabet.
    UnknownLabel {
        /// The offending name.
        name: String,
    },
    /// A configuration has the wrong number of labels for its constraint.
    WrongDegree {
        /// Degree the constraint expects.
        expected: u32,
        /// Degree that was supplied.
        found: u32,
    },
    /// A constraint was empty where a non-empty one is required.
    EmptyConstraint,
    /// A label index is out of range for the alphabet.
    LabelOutOfRange {
        /// The offending label index.
        index: u8,
        /// Size of the alphabet.
        alphabet_len: usize,
    },
    /// The text form of a constraint could not be parsed.
    Parse {
        /// Human-readable description of the parse failure.
        message: String,
    },
    /// The problem's parameters are outside the supported range.
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        message: String,
    },
    /// A round elimination step produced an empty constraint: the input
    /// problem is degenerate (e.g. a label required by the node constraint
    /// is compatible with nothing).
    DegenerateProblem {
        /// Which side collapsed.
        message: String,
    },
}

impl fmt::Display for RelimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelimError::TooManyLabels { requested } => {
                write!(f, "alphabet of {requested} labels exceeds the limit of 31")
            }
            RelimError::DuplicateLabel { name } => {
                write!(f, "duplicate label name `{name}` in alphabet")
            }
            RelimError::UnknownLabel { name } => write!(f, "unknown label name `{name}`"),
            RelimError::WrongDegree { expected, found } => {
                write!(f, "configuration of degree {found} where {expected} was expected")
            }
            RelimError::EmptyConstraint => write!(f, "constraint must be non-empty"),
            RelimError::LabelOutOfRange { index, alphabet_len } => {
                write!(f, "label index {index} out of range for alphabet of {alphabet_len}")
            }
            RelimError::Parse { message } => write!(f, "parse error: {message}"),
            RelimError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
            RelimError::DegenerateProblem { message } => {
                write!(f, "degenerate problem: {message}")
            }
        }
    }
}

impl std::error::Error for RelimError {}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, RelimError>;
