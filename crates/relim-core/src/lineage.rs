//! Derivation lineage of round-elimination runs: [`LineageGraph`].
//!
//! A bound search derives its certificate through a DAG of problem
//! transformations — `Π → R(Π) → R̄(R(Π)) → …`, interleaved with label
//! merges (lower bounds) or label deletions (upper bounds) — that the
//! engine historically computed and threw away. When a session is built
//! with [`crate::engine::EngineBuilder::record_lineage`], the drivers
//! behind [`crate::engine::Engine::iterate`],
//! [`crate::engine::Engine::auto_lower_bound`] and
//! [`crate::engine::Engine::auto_upper_bound`] record every operator
//! application into a `LineageGraph`: one arena-indexed node per distinct
//! canonical problem (keyed by the FNV-1a-128 digest of its rendering)
//! and one edge per operator application.
//!
//! The graph serializes deterministically to JSON ([`LineageGraph::to_json`],
//! schema [`LINEAGE_SCHEMA`]) and renders to Graphviz DOT
//! ([`LineageGraph::to_dot`]) with optional straight-line contraction:
//! the `R`/`R̄`/`reduce` intermediates inside one step collapse into a
//! single composite edge between chain elements, so deep iterates stay
//! readable. Both renderings are byte-identical at any engine thread
//! count — recording happens in the (sequential) driver loops, so
//! insertion order never depends on the pool schedule.
//!
//! # Example
//!
//! ```
//! use relim_core::engine::Engine;
//! use relim_core::Problem;
//!
//! let engine = Engine::builder().threads(1).record_lineage(true).build();
//! let so = Problem::from_text("O I I", "[O I] I").unwrap();
//! assert!(engine.iterate_with_limits(&so, 5, 20).reached_fixed_point());
//! let lineage = engine.lineage().expect("recording was enabled");
//! assert!(lineage.node_count() >= 3, "input, R(Π) and R̄(R(Π)) at least");
//! assert!(lineage.to_dot("so fixed point", true).starts_with("digraph"));
//! ```
#![deny(missing_docs)]

use crate::digest::fnv1a128_hex;
use crate::problem::Problem;
use relim_json::Json;
use std::collections::HashMap;

/// Schema tag of the JSON rendering ([`LineageGraph::to_json`]).
pub const LINEAGE_SCHEMA: &str = "relim-lineage/1";

/// How many digest characters a DOT node label shows.
const DOT_DIGEST_CHARS: usize = 12;

/// The role a recorded problem plays in the derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A chain element: a driver-loop input or a merge/harden/reduce
    /// output. Elements survive DOT contraction.
    Element,
    /// An artifact inside one `R̄(R(·))` application (the `R(Π)` problem
    /// or the un-reduced `R̄` output). Intermediates are collapsed by
    /// contracted DOT rendering.
    Intermediate,
}

impl NodeKind {
    fn as_str(self) -> &'static str {
        match self {
            NodeKind::Element => "element",
            NodeKind::Intermediate => "intermediate",
        }
    }
}

/// One recorded problem (a node of the derivation DAG).
#[derive(Debug, Clone)]
pub struct LineageNode {
    /// Canonical content digest: FNV-1a-128 of [`Problem::render`].
    pub digest: String,
    /// Alphabet size of the problem.
    pub labels: usize,
    /// Configuration count of the node constraint.
    pub node_configs: usize,
    /// Configuration count of the edge constraint.
    pub edge_configs: usize,
    /// Role in the derivation (see [`NodeKind`]).
    pub kind: NodeKind,
}

/// One operator application (an edge of the derivation DAG).
#[derive(Debug, Clone)]
pub struct LineageEdge {
    /// Arena index of the input problem.
    pub from: usize,
    /// Arena index of the output problem.
    pub to: usize,
    /// Operator name: `R`, `R̄`, `reduce`, `merge` or `harden`.
    pub op: String,
    /// Operator detail (merged label pairs, deleted label names); empty
    /// when the operator carries no parameters.
    pub detail: String,
}

/// An arena-backed derivation DAG of one engine session.
///
/// Nodes are interned by canonical digest, so revisiting a problem (a
/// fixed point confirming itself, two searches sharing a prefix) reuses
/// its arena index; parallel edges are deduplicated on
/// `(from, to, op, detail)`. Insertion order is the recording order of
/// the sequential driver loops, which makes every rendering
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct LineageGraph {
    nodes: Vec<LineageNode>,
    edges: Vec<LineageEdge>,
    by_digest: HashMap<String, usize>,
    roots: Vec<usize>,
}

impl LineageGraph {
    /// An empty graph.
    pub fn new() -> LineageGraph {
        LineageGraph::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of distinct problems recorded.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct operator applications recorded.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The recorded problems, in arena order.
    pub fn nodes(&self) -> &[LineageNode] {
        &self.nodes
    }

    /// The recorded operator applications, in recording order.
    pub fn edges(&self) -> &[LineageEdge] {
        &self.edges
    }

    /// Arena indices of the recorded search roots, in recording order.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Interns `p` by canonical digest and returns its arena index. A
    /// problem first seen as an [`NodeKind::Intermediate`] and later as
    /// an element is upgraded — element status is sticky.
    pub fn intern(&mut self, p: &Problem, kind: NodeKind) -> usize {
        let digest = fnv1a128_hex(p.render().as_bytes());
        if let Some(&id) = self.by_digest.get(&digest) {
            if kind == NodeKind::Element {
                self.nodes[id].kind = NodeKind::Element;
            }
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(LineageNode {
            digest: digest.clone(),
            labels: p.alphabet().len(),
            node_configs: p.node().len(),
            edge_configs: p.edge().len(),
            kind,
        });
        self.by_digest.insert(digest, id);
        id
    }

    /// Records the edge `from → to` unless the identical application
    /// (same endpoints, operator and detail) was already recorded.
    pub fn link(&mut self, from: usize, to: usize, op: &str, detail: &str) {
        let seen = self
            .edges
            .iter()
            .any(|e| e.from == from && e.to == to && e.op == op && e.detail == detail);
        if !seen {
            self.edges.push(LineageEdge { from, to, op: op.to_owned(), detail: detail.to_owned() });
        }
    }

    /// Records `p` as a search root (the initial chain element of a
    /// driver run).
    pub fn record_root(&mut self, p: &Problem) {
        let id = self.intern(p, NodeKind::Element);
        if !self.roots.contains(&id) {
            self.roots.push(id);
        }
    }

    /// Records one full `Π ↦ R̄(R(Π))` application: the `R` edge, the `R̄`
    /// edge, and (when dropping unused labels changes the problem) the
    /// `reduce` edge to the next chain element — exactly the reduction
    /// every driver loop applies to the step output.
    pub fn record_rr_step(&mut self, input: &Problem, r: &Problem, rr: &Problem) {
        let a = self.intern(input, NodeKind::Element);
        let b = self.intern(r, NodeKind::Intermediate);
        let c = self.intern(rr, NodeKind::Intermediate);
        self.link(a, b, "R", "");
        self.link(b, c, "R̄", "");
        let (reduced, _) = rr.drop_unused_labels();
        let d = self.intern(&reduced, NodeKind::Element);
        if d != c {
            self.link(c, d, "reduce", "drop unused labels");
        }
    }

    /// Records a lower-bound merge step: `raw → problem` with the applied
    /// `(from, to)` label-name merges as the edge detail. A step that
    /// merged nothing (the identity) records no edge.
    pub fn record_merge(&mut self, raw: &Problem, problem: &Problem, merges: &[(String, String)]) {
        let from = self.intern(raw, NodeKind::Element);
        let to = self.intern(problem, NodeKind::Element);
        if from == to {
            return;
        }
        let detail: Vec<String> = merges.iter().map(|(a, b)| format!("{a}→{b}")).collect();
        self.link(from, to, "merge", &detail.join(", "));
    }

    /// Records an upper-bound hardening step: `raw → problem` with the
    /// deleted label names as the edge detail. A step that deleted
    /// nothing records no edge.
    pub fn record_harden(&mut self, raw: &Problem, problem: &Problem, removals: &[String]) {
        let from = self.intern(raw, NodeKind::Element);
        let to = self.intern(problem, NodeKind::Element);
        if from == to {
            return;
        }
        self.link(from, to, "harden", &removals.join(", "));
    }

    /// Deterministic JSON rendering (schema [`LINEAGE_SCHEMA`]): nodes in
    /// arena order, edges in recording order, roots in recording order.
    pub fn to_json(&self) -> Json {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| {
                Json::Obj(vec![
                    ("id".to_owned(), Json::Int(id as i64)),
                    ("digest".to_owned(), Json::Str(n.digest.clone())),
                    ("kind".to_owned(), Json::Str(n.kind.as_str().to_owned())),
                    ("labels".to_owned(), Json::Int(n.labels as i64)),
                    ("node_configs".to_owned(), Json::Int(n.node_configs as i64)),
                    ("edge_configs".to_owned(), Json::Int(n.edge_configs as i64)),
                ])
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("from".to_owned(), Json::Int(e.from as i64)),
                    ("to".to_owned(), Json::Int(e.to as i64)),
                    ("op".to_owned(), Json::Str(e.op.clone())),
                    ("detail".to_owned(), Json::Str(e.detail.clone())),
                ])
            })
            .collect();
        let roots = self.roots.iter().map(|&r| Json::Int(r as i64)).collect();
        Json::Obj(vec![
            ("schema".to_owned(), Json::Str(LINEAGE_SCHEMA.to_owned())),
            ("nodes".to_owned(), Json::Arr(nodes)),
            ("edges".to_owned(), Json::Arr(edges)),
            ("roots".to_owned(), Json::Arr(roots)),
        ])
    }

    /// [`LineageGraph::to_json`] rendered to pretty text.
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }

    /// Graphviz DOT rendering. With `contract` set, straight-line runs of
    /// intermediates (a node of kind [`NodeKind::Intermediate`] with
    /// exactly one incoming and one outgoing edge) are removed and their
    /// edges bridged, joining the operator labels with `·` — so a full
    /// `R`/`R̄`/`reduce` step shows as one `R·R̄·reduce` edge between
    /// chain elements.
    pub fn to_dot(&self, title: &str, contract: bool) -> String {
        struct DotEdge {
            from: usize,
            to: usize,
            label: String,
        }
        let mut edges: Vec<DotEdge> = self
            .edges
            .iter()
            .map(|e| DotEdge {
                from: e.from,
                to: e.to,
                label: if e.detail.is_empty() {
                    e.op.clone()
                } else {
                    format!("{} [{}]", e.op, e.detail)
                },
            })
            .collect();
        let mut removed = vec![false; self.nodes.len()];
        if contract {
            // Repeatedly splice out the lowest-indexed contractible
            // intermediate; the scan order makes the result deterministic.
            loop {
                let candidate = (0..self.nodes.len()).find(|&v| {
                    if removed[v] || self.nodes[v].kind != NodeKind::Intermediate {
                        return false;
                    }
                    let ins: Vec<usize> = (0..edges.len()).filter(|&i| edges[i].to == v).collect();
                    let outs: Vec<usize> =
                        (0..edges.len()).filter(|&i| edges[i].from == v).collect();
                    ins.len() == 1
                        && outs.len() == 1
                        && edges[ins[0]].from != v
                        && edges[outs[0]].to != v
                });
                let Some(v) = candidate else { break };
                let in_at = edges.iter().position(|e| e.to == v).unwrap();
                let out_at = edges.iter().position(|e| e.from == v).unwrap();
                let bridged = DotEdge {
                    from: edges[in_at].from,
                    to: edges[out_at].to,
                    label: format!("{}·{}", edges[in_at].label, edges[out_at].label),
                };
                let (first, second) = (in_at.min(out_at), in_at.max(out_at));
                edges.remove(second);
                edges[first] = bridged;
                removed[v] = true;
            }
        }
        let mut out = String::new();
        out.push_str("digraph lineage {\n");
        out.push_str("    rankdir=LR;\n");
        out.push_str("    node [shape=box, fontname=\"monospace\", fontsize=10];\n");
        out.push_str(&format!("    label=\"{}\";\n", escape_dot(title)));
        for (id, node) in self.nodes.iter().enumerate() {
            if removed[id] {
                continue;
            }
            let short = &node.digest[..DOT_DIGEST_CHARS.min(node.digest.len())];
            let style = match node.kind {
                NodeKind::Element => "",
                NodeKind::Intermediate => ", style=dashed",
            };
            out.push_str(&format!(
                "    n{id} [label=\"{short}\\n|Σ|={} N:{} E:{}\"{style}];\n",
                node.labels, node.node_configs, node.edge_configs
            ));
        }
        for e in &edges {
            out.push_str(&format!(
                "    n{} -> n{} [label=\"{}\"];\n",
                e.from,
                e.to,
                escape_dot(&e.label)
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Escapes a string for use inside a double-quoted DOT attribute.
fn escape_dot(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autolb::AutoLbOptions;
    use crate::autoub::AutoUbOptions;
    use crate::engine::Engine;

    fn mis3() -> Problem {
        Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap()
    }

    fn so() -> Problem {
        Problem::from_text("O I I", "[O I] I").unwrap()
    }

    #[test]
    fn empty_graph_renders() {
        let g = LineageGraph::new();
        assert!(g.is_empty());
        let json = g.render_json();
        assert!(json.contains(LINEAGE_SCHEMA), "{json}");
        let dot = g.to_dot("empty", true);
        assert!(dot.starts_with("digraph lineage {"), "{dot}");
        assert!(dot.ends_with("}\n"), "{dot}");
    }

    #[test]
    fn interning_dedups_by_digest_and_upgrades_kind() {
        let mut g = LineageGraph::new();
        let p = mis3();
        let a = g.intern(&p, NodeKind::Intermediate);
        let b = g.intern(&p, NodeKind::Element);
        assert_eq!(a, b);
        assert_eq!(g.nodes()[a].kind, NodeKind::Element, "element status is sticky");
        g.link(a, a, "R", "");
        g.link(a, a, "R", "");
        assert_eq!(g.edge_count(), 1, "identical applications dedup");
    }

    #[test]
    fn iterate_records_a_connected_step_chain() {
        let engine = Engine::builder().threads(1).record_lineage(true).build();
        let outcome = engine.iterate_with_limits(&so(), 5, 20);
        assert!(outcome.reached_fixed_point());
        let g = engine.lineage().expect("recording enabled");
        assert!(!g.is_empty());
        assert_eq!(g.roots().len(), 1);
        assert!(g.edges().iter().any(|e| e.op == "R"));
        assert!(g.edges().iter().any(|e| e.op == "R̄"));
        // Every chain element of the outcome is a recorded node.
        for p in &outcome.problems {
            let digest = fnv1a128_hex(p.render().as_bytes());
            assert!(g.nodes().iter().any(|n| n.digest == digest), "missing {digest}");
        }
    }

    #[test]
    fn autolb_records_merge_edges_matching_the_outcome() {
        let engine = Engine::builder().threads(1).record_lineage(true).build();
        let opts = AutoLbOptions { max_steps: 3, label_budget: 4, ..AutoLbOptions::default() };
        let outcome = engine.auto_lower_bound(&mis3(), &opts);
        let g = engine.lineage().expect("recording enabled");
        let merging_steps = outcome.steps.iter().filter(|s| !s.merges.is_empty()).count();
        let merge_edges = g.edges().iter().filter(|e| e.op == "merge").count();
        assert!(
            merging_steps == 0 || merge_edges > 0,
            "outcome merged labels but the lineage recorded no merge edge"
        );
        for step in outcome.steps.iter().filter(|s| !s.merges.is_empty()) {
            let raw = fnv1a128_hex(step.raw.render().as_bytes());
            let merged = fnv1a128_hex(step.problem.render().as_bytes());
            assert!(g.nodes().iter().any(|n| n.digest == raw));
            assert!(g.nodes().iter().any(|n| n.digest == merged));
        }
    }

    #[test]
    fn autoub_records_harden_edges() {
        let engine = Engine::builder().threads(1).record_lineage(true).build();
        let opts = AutoUbOptions { max_steps: 5, label_budget: 14, coloring: Some(3) };
        let p = Problem::from_text("M M\nP O", "M [P O]\nO O").unwrap();
        let outcome = engine.auto_upper_bound(&p, &opts);
        let g = engine.lineage().expect("recording enabled");
        let hardening_steps = outcome.steps.iter().filter(|s| !s.removals.is_empty()).count();
        let harden_edges = g.edges().iter().filter(|e| e.op == "harden").count();
        assert!(
            hardening_steps == 0 || harden_edges > 0,
            "outcome deleted labels but the lineage recorded no harden edge"
        );
    }

    #[test]
    fn contraction_removes_only_intermediates() {
        let engine = Engine::builder().threads(1).record_lineage(true).build();
        engine.iterate_with_limits(&so(), 5, 20);
        let g = engine.lineage().unwrap();
        let full = g.to_dot("so", false);
        let contracted = g.to_dot("so", true);
        assert!(full.len() > contracted.len(), "contraction must shrink the rendering");
        // Every element node survives contraction.
        for (id, node) in g.nodes().iter().enumerate() {
            if node.kind == NodeKind::Element {
                assert!(contracted.contains(&format!("n{id} [")), "element n{id} vanished");
            }
        }
        assert!(contracted.contains('·'), "composite edge label expected: {contracted}");
    }

    #[test]
    fn renderings_are_byte_identical_at_any_width() {
        let reference: Option<(String, String, String)> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                let engine = Engine::builder().threads(threads).record_lineage(true).build();
                engine.iterate_with_limits(&mis3(), 3, 20);
                engine.auto_lower_bound(&so(), &AutoLbOptions::default());
                let g = engine.lineage().unwrap();
                (g.render_json(), g.to_dot("width test", true), g.to_dot("width test", false))
            })
            .fold(None, |acc, triple| match acc {
                None => Some(triple),
                Some(prev) => {
                    assert_eq!(prev, triple, "lineage renderings must not depend on width");
                    Some(triple)
                }
            });
        assert!(reference.is_some());
    }

    #[test]
    fn json_parses_back_and_is_self_consistent() {
        let engine = Engine::builder().threads(1).record_lineage(true).build();
        engine.iterate_with_limits(&so(), 5, 20);
        let g = engine.lineage().unwrap();
        let doc = Json::parse(&g.render_json()).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(LINEAGE_SCHEMA));
        let nodes = doc.get("nodes").and_then(Json::as_arr).unwrap();
        assert_eq!(nodes.len(), g.node_count());
        for e in doc.get("edges").and_then(Json::as_arr).unwrap() {
            let from = e.get("from").and_then(Json::as_i64).unwrap() as usize;
            let to = e.get("to").and_then(Json::as_i64).unwrap() as usize;
            assert!(from < nodes.len() && to < nodes.len(), "edge endpoints in arena");
        }
    }
}
