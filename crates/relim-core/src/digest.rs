//! Canonical content digests for constraints and problems.
//!
//! The serving layer (`relim-service`) memoizes round-elimination results
//! in a *content-addressed* store: the cache key is a digest of the exact
//! problem text plus the operation and its parameters. That only works if
//! equal values always produce equal bytes to digest — which this module
//! guarantees by digesting **canonical encodings**:
//!
//! * a [`Constraint`] is encoded from its sorted configuration set (the
//!   `BTreeSet` iteration order), so two constraints that compare equal
//!   encode — and digest — identically, independent of construction
//!   order;
//! * a [`Problem`] digests its [`Problem::render`] text, which includes
//!   the alphabet names (two problems that differ only in label names
//!   serve differently-rendered results, so they must key differently).
//!
//! The digest itself is a 128-bit FNV-1a variant (two independent 64-bit
//! FNV-1a streams over the same bytes, differing in their offset basis),
//! rendered as 32 lowercase hex characters. It is **not**
//! collision-resistant against adversaries — the store therefore verifies
//! the full key text on every hit (see `relim-service`) — but it is
//! deterministic across platforms, dependency-free, and wide enough that
//! accidental collisions are never the common case.

use crate::constraint::Constraint;
use crate::problem::Problem;

/// FNV-1a 64-bit offset basis (the standard one).
const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, independent offset basis for the high half of the digest
/// (the standard basis XOR a fixed pattern, so the two streams never
/// coincide).
const OFFSET_B: u64 = OFFSET_A ^ 0x5851_f42d_4c95_7f2d;
/// FNV 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Digests arbitrary bytes to 32 lowercase hex characters (128 bits:
/// two independent FNV-1a 64 streams).
///
/// ```
/// use relim_core::digest::fnv1a128_hex;
///
/// let d = fnv1a128_hex(b"relim");
/// assert_eq!(d.len(), 32);
/// assert_eq!(d, fnv1a128_hex(b"relim"), "deterministic");
/// assert_ne!(d, fnv1a128_hex(b"relim "), "content-sensitive");
/// ```
pub fn fnv1a128_hex(bytes: &[u8]) -> String {
    let mut a = OFFSET_A;
    let mut b = OFFSET_B;
    for &byte in bytes {
        a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
        b = (b ^ u64::from(byte)).wrapping_mul(PRIME);
    }
    format!("{a:016x}{b:016x}")
}

/// The single-stream 64-bit FNV-1a hash of `bytes` (the low half of
/// [`fnv1a128_hex`]'s pair). This is the position hash of the serving
/// layer's consistent-hash ring: deterministic across platforms and
/// dependency-free, like the digest itself — a fleet of daemons built
/// from different checkouts must agree on every address's owner.
///
/// ```
/// use relim_core::digest::fnv1a64;
///
/// assert_eq!(fnv1a64(b"relim"), fnv1a64(b"relim"), "deterministic");
/// assert_ne!(fnv1a64(b"relim"), fnv1a64(b"relim "), "content-sensitive");
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut a = OFFSET_A;
    for &byte in bytes {
        a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
    }
    a
}

impl Constraint {
    /// The canonical byte encoding this constraint digests: the degree,
    /// then every configuration in sorted order as its label indices,
    /// with unambiguous separators (label bytes are < 0xFE by
    /// construction — alphabets hold at most 26 labels).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.len() * (self.degree() as usize + 1));
        out.extend_from_slice(&self.degree().to_le_bytes());
        for cfg in self.iter() {
            for &label in cfg.as_slice() {
                out.push(label.raw());
            }
            out.push(0xFF);
        }
        out
    }

    /// The canonical content digest of this constraint (32 hex chars).
    /// Equal constraints digest equally regardless of how they were
    /// built; the encoding is name-free (labels are indices).
    ///
    /// The encoding works on label *indices*, so it is only meaningful
    /// to compare constraints over one alphabet (the text parser infers
    /// the alphabet from first appearance — reordering the node text
    /// renumbers every label).
    ///
    /// ```
    /// use relim_core::Problem;
    ///
    /// let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
    /// // Same alphabet (node text unchanged), edge lines reordered:
    /// let again = Problem::from_text("M M M\nP O O", "O O\nM [P O]").unwrap();
    /// assert_eq!(
    ///     mis.edge().canonical_digest(),
    ///     again.edge().canonical_digest(),
    ///     "configuration order does not matter",
    /// );
    /// assert_ne!(mis.node().canonical_digest(), mis.edge().canonical_digest());
    /// ```
    pub fn canonical_digest(&self) -> String {
        fnv1a128_hex(&self.canonical_bytes())
    }
}

impl Problem {
    /// The canonical content digest of this problem: the digest of its
    /// [`Problem::render`] text, which covers the alphabet names and both
    /// constraints. This is the digest the result store keys on (composed
    /// with the operation and its parameters).
    pub fn canonical_digest(&self) -> String {
        fnv1a128_hex(self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_shape_and_determinism() {
        let d = fnv1a128_hex(b"");
        assert_eq!(d.len(), 32);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(fnv1a128_hex(b"abc"), fnv1a128_hex(b"abc"));
        assert_ne!(fnv1a128_hex(b"abc"), fnv1a128_hex(b"abd"));
        // The two halves are independent streams, not copies.
        let d = fnv1a128_hex(b"abc");
        assert_ne!(&d[..16], &d[16..]);
    }

    #[test]
    fn fnv1a64_is_the_low_stream_of_the_wide_digest() {
        // Pinning the relationship keeps ring positions stable: a future
        // change to either function that silently diverged them would
        // re-shard every fleet's address space.
        let wide = fnv1a128_hex(b"ring position");
        assert_eq!(format!("{:016x}", fnv1a64(b"ring position")), &wide[..16]);
        // The standard FNV-1a 64 test vector for the empty input.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn constraint_digest_is_construction_order_free() {
        // Keep the node text identical so both problems infer the same
        // alphabet (label indices), and reorder only the edge lines: the
        // sorted-set encoding must erase the difference.
        let a = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let b = Problem::from_text("M M M\nP O O", "O O\nM [P O]").unwrap();
        assert_eq!(a.edge().canonical_digest(), b.edge().canonical_digest());
        assert_eq!(a.node().canonical_digest(), b.node().canonical_digest());
        assert_eq!(a.canonical_digest(), b.canonical_digest());
    }

    #[test]
    fn constraint_digest_is_content_sensitive() {
        let a = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let b = Problem::from_text("M M M", "M [P O]\nO O").unwrap();
        assert_ne!(a.node().canonical_digest(), b.node().canonical_digest());
        // Same configs, different degree prefix can never collide by
        // construction; spot-check two different degrees.
        let d2 = Problem::from_text("A A", "A A").unwrap();
        let d3 = Problem::from_text("A A A", "A A").unwrap();
        assert_ne!(d2.node().canonical_digest(), d3.node().canonical_digest());
    }

    #[test]
    fn problem_digest_sees_label_names() {
        let a = Problem::from_text("A A", "A A").unwrap();
        let b = Problem::from_text("B B", "B B").unwrap();
        // Name-free constraints agree...
        assert_eq!(a.node().canonical_digest(), b.node().canonical_digest());
        // ...but the problem digest keys the rendered text, names included.
        assert_ne!(a.canonical_digest(), b.canonical_digest());
        assert_eq!(a.canonical_digest(), fnv1a128_hex(a.render().as_bytes()));
    }
}
