//! A small-buffer vector: inline storage for up to `N` elements, spilling
//! to a heap [`Vec`] beyond.
//!
//! The round-elimination hot loop manipulates millions of tiny sequences —
//! [`crate::Config`] is a multiset of `u8`-sized labels, [`crate::SetConfig`]
//! a multiset of `u32` bitmasks, and degrees are small (Δ ≤ 5 in every
//! paper instance). Backing them with `Vec` means one heap allocation per
//! candidate per DFS step. [`InlineVec`] stores up to `N` elements directly
//! in the value; only sequences longer than `N` pay for a heap `Vec`.
//!
//! The crate is `#![forbid(unsafe_code)]`, so this is the *safe* flavour of
//! a small-vector: an enum of `[T; N]` + length versus a spilled `Vec`,
//! requiring `T: Copy + Default` to initialize the unused tail of the
//! inline buffer. That fits every use here (labels, bitmasks, cardinality
//! bytes are all `Copy` scalars) and keeps clippy `-D warnings` trivially
//! clean.
//!
//! ## Semantics
//!
//! All comparison traits (`PartialEq`/`Eq`/`PartialOrd`/`Ord`/`Hash`)
//! delegate to [`InlineVec::as_slice`], which is exactly how `Vec` defines
//! them — so swapping `Vec<T>` for `InlineVec<T, N>` inside a type changes
//! **no** observable ordering, equality, or hash behaviour (the inline
//! differential suite pins this against `Vec` directly). Whether a value is
//! currently inline or spilled is invisible to comparisons; a value that
//! spills and then shrinks below `N` stays spilled (no copy-back churn).

use std::fmt;
use std::hash::{Hash, Hasher};

/// A vector of `Copy` scalars that stores up to `N` elements inline and
/// spills to a heap [`Vec`] beyond.
///
/// # Example
///
/// ```
/// use relim_core::inline_vec::InlineVec;
///
/// let mut v: InlineVec<u8, 4> = InlineVec::new();
/// for x in [3, 1, 2] {
///     v.push(x);
/// }
/// assert_eq!(v.as_slice(), &[3, 1, 2]);
/// assert!(!v.is_spilled());
/// v.as_mut_slice().sort_unstable();
/// assert_eq!(v.as_slice(), &[1, 2, 3]);
/// ```
#[derive(Clone)]
pub struct InlineVec<T, const N: usize> {
    repr: Repr<T, N>,
}

#[derive(Clone)]
enum Repr<T, const N: usize> {
    /// Up to `N` elements stored in the value; slots at `len..` hold
    /// `T::default()` filler and are never observed.
    Inline { buf: [T; N], len: u8 },
    /// More than `N` elements once lived here; heap-backed from then on.
    Spilled(Vec<T>),
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// The number of elements that fit without a heap allocation.
    pub const INLINE_CAPACITY: usize = N;

    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        const { assert!(N > 0 && N <= u8::MAX as usize, "inline capacity must fit in u8") };
        InlineVec { repr: Repr::Inline { buf: [T::default(); N], len: 0 } }
    }

    /// Creates a vector from a slice: inline if it fits, spilled otherwise.
    pub fn from_slice(slice: &[T]) -> Self {
        let mut out = Self::new();
        if slice.len() <= N {
            let Repr::Inline { buf, len } = &mut out.repr else { unreachable!() };
            buf[..slice.len()].copy_from_slice(slice);
            *len = slice.len() as u8;
        } else {
            out.repr = Repr::Spilled(slice.to_vec());
        }
        out
    }

    /// Converts from a `Vec`, reusing its buffer when it must spill.
    pub fn from_vec(vec: Vec<T>) -> Self {
        if vec.len() <= N {
            Self::from_slice(&vec)
        } else {
            InlineVec { repr: Repr::Spilled(vec) }
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Spilled(v) => v.len(),
        }
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements currently live on the heap (diagnostic; never
    /// affects comparisons or hashing).
    pub fn is_spilled(&self) -> bool {
        matches!(self.repr, Repr::Spilled(_))
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { buf, len } => &buf[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    /// The elements as a mutable slice (e.g. for sorting in place).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Inline { buf, len } => &mut buf[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    /// Appends an element, spilling to the heap on overflow of the inline
    /// buffer.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { buf, len } if (*len as usize) < N => {
                buf[*len as usize] = value;
                *len += 1;
            }
            Repr::Inline { buf, len } => {
                let mut v = Vec::with_capacity(N * 2);
                v.extend_from_slice(&buf[..*len as usize]);
                v.push(value);
                self.repr = Repr::Spilled(v);
            }
            Repr::Spilled(v) => v.push(value),
        }
    }

    /// Inserts `value` at `index`, shifting the tail right.
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn insert(&mut self, index: usize, value: T) {
        match &mut self.repr {
            Repr::Inline { buf, len } if (*len as usize) < N => {
                let n = *len as usize;
                assert!(index <= n, "insert index {index} out of bounds (len {n})");
                buf.copy_within(index..n, index + 1);
                buf[index] = value;
                *len += 1;
            }
            Repr::Inline { buf, len } => {
                let mut v = Vec::with_capacity(N * 2);
                v.extend_from_slice(&buf[..*len as usize]);
                v.insert(index, value);
                self.repr = Repr::Spilled(v);
            }
            Repr::Spilled(v) => v.insert(index, value),
        }
    }

    /// Removes and returns the last element, or `None` if empty. A spilled
    /// vector stays spilled even when it shrinks back under `N`.
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len == 0 {
                    return None;
                }
                *len -= 1;
                Some(buf[*len as usize])
            }
            Repr::Spilled(v) => v.pop(),
        }
    }

    /// Removes all elements, keeping any spilled capacity for reuse.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, .. } => *len = 0,
            Repr::Spilled(v) => v.clear(),
        }
    }

    /// Iterates over the elements by value.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.as_slice().iter().copied()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        for x in iter {
            out.push(x);
        }
        out
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(vec: Vec<T>) -> Self {
        Self::from_vec(vec)
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// The comparison traits must match `Vec<T>` exactly — `Vec` defines all of
// them on the element slice, so delegating to `as_slice()` reproduces the
// length-prefixed `Hash` and lexicographic `Ord` bit-for-bit regardless of
// the storage representation.

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + PartialOrd, const N: usize> PartialOrd for InlineVec<T, N> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<T: Copy + Default + Ord, const N: usize> Ord for InlineVec<T, N> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<T: Copy + Default + Hash, const N: usize> Hash for InlineVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // `Vec`/slice hashing is length-prefixed; `Hash for [T]` does
        // exactly that.
        self.as_slice().hash(state);
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    type V = InlineVec<u8, 4>;

    fn hash_of<T: Hash>(x: &T) -> u64 {
        let mut h = DefaultHasher::new();
        x.hash(&mut h);
        h.finish()
    }

    #[test]
    fn push_within_inline_capacity() {
        let mut v = V::new();
        assert!(v.is_empty());
        for x in 0..4 {
            v.push(x);
        }
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
        assert!(!v.is_spilled());
    }

    #[test]
    fn push_past_capacity_spills() {
        let mut v = V::new();
        for x in 0..5 {
            v.push(x);
        }
        assert!(v.is_spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        // Popping back under the boundary does not copy back inline.
        assert_eq!(v.pop(), Some(4));
        assert!(v.is_spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn insert_shifts_and_spills() {
        let mut v = V::from_slice(&[1, 3, 4]);
        v.insert(1, 2);
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
        assert!(!v.is_spilled());
        v.insert(0, 0);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert!(v.is_spilled());
        v.insert(5, 9);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 9]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        let mut v = V::from_slice(&[1]);
        v.insert(2, 0);
    }

    #[test]
    fn from_vec_reuses_spilled_buffer() {
        let v = V::from_vec(vec![0, 1, 2, 3, 4, 5]);
        assert!(v.is_spilled());
        assert_eq!(v.len(), 6);
        let w = V::from_vec(vec![7]);
        assert!(!w.is_spilled());
    }

    #[test]
    fn clone_is_independent() {
        let a = V::from_slice(&[1, 2]);
        let mut b = a.clone();
        b.push(3);
        assert_eq!(a.as_slice(), &[1, 2]);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        // Clone of a spilled vector is independent too.
        let mut c = V::from_vec(vec![0; 6]);
        let d = c.clone();
        c.as_mut_slice()[0] = 9;
        assert_eq!(d.as_slice(), &[0; 6]);
    }

    #[test]
    fn iter_and_collect_roundtrip() {
        let v: V = (0..3).collect();
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        let spilled: V = (0..6).collect();
        assert!(spilled.is_spilled());
        assert_eq!(spilled.iter().sum::<u8>(), 15);
        assert_eq!((&spilled).into_iter().count(), 6);
    }

    #[test]
    fn clear_keeps_representation() {
        let mut v = V::from_vec(vec![0; 6]);
        v.clear();
        assert!(v.is_empty());
        assert!(v.is_spilled());
        let mut w = V::from_slice(&[1]);
        w.clear();
        assert!(w.is_empty() && !w.is_spilled());
    }

    #[test]
    fn drop_of_inline_and_spilled_values() {
        // `T: Copy` means no element destructors; this pins that dropping
        // both representations (and a cloned spill) is sound under the
        // default allocator — a leak or double-free would crash the suite.
        for n in [0usize, 4, 64] {
            let v = V::from_vec(vec![0; n]);
            let _clone = v.clone();
            drop(v);
        }
    }

    #[test]
    fn eq_ord_hash_match_vec_semantics_across_representations() {
        let inline = V::from_slice(&[1, 2, 3]);
        let mut spilled = V::from_vec(vec![1, 2, 3, 4, 5]);
        spilled.pop();
        spilled.pop();
        assert!(spilled.is_spilled() && !inline.is_spilled());
        // Same elements ⇒ equal and same hash, storage notwithstanding.
        assert_eq!(inline, spilled);
        assert_eq!(hash_of(&inline), hash_of(&spilled));
        // Ord is the slice's lexicographic order, exactly like Vec.
        let pairs: &[(&[u8], &[u8])] = &[
            (&[1, 2], &[1, 2, 3]),
            (&[1, 3], &[1, 2, 3]),
            (&[], &[0]),
            (&[9], &[1, 2, 3, 4, 5, 6]),
        ];
        for &(a, b) in pairs {
            let (va, vb) = (V::from_slice(a), V::from_slice(b));
            assert_eq!(va.cmp(&vb), a.to_vec().cmp(&b.to_vec()), "{a:?} vs {b:?}");
            assert_eq!(va.partial_cmp(&vb), a.to_vec().partial_cmp(&b.to_vec()));
        }
    }

    #[test]
    fn debug_matches_vec() {
        let v = V::from_slice(&[1, 2]);
        assert_eq!(format!("{v:?}"), format!("{:?}", vec![1u8, 2]));
    }
}
