//! The round elimination operators `R(·)` and `R̄(·)` (paper §2.3).
//!
//! Given a problem `Π = (Σ, N, E)`:
//!
//! * [`r_step`] computes `Π' = R(Π)`:
//!   - `E_Π'`: all **maximal** configurations `A₁ A₂` of non-empty label sets
//!     such that every choice `(a₁, a₂) ∈ A₁ × A₂` lies in `E_Π`;
//!   - `Σ_Π'`: the sets appearing in `E_Π'`;
//!   - `N_Π'`: all configurations `B₁ … B_Δ` over `Σ_Π'` admitting **some**
//!     choice in `N_Π`.
//! * [`rbar_step`] computes `Π'' = R̄(Π')` — the same with the roles of node
//!   and edge constraints swapped.
//!
//! By Brandt's automatic speedup theorem (paper Theorem 3), on Δ-regular
//! trees of girth `≥ 2T+2`, `Π` is solvable in `T` rounds iff `R̄(R(Π))` is
//! solvable in `max{T−1, 0}` rounds in the port numbering model.
//!
//! The universal ("for-all + maximality") sides use two exact accelerations:
//!
//! 1. **Observation 4** (right-closedness): maximal configurations only use
//!    label sets that are upward-closed in the relevant strength order, so
//!    candidates are enumerated over [`crate::rightclosed::right_closed_sets`].
//! 2. For the degree-2 edge side, maximal pairs are exactly the fixed points
//!    of the Galois connection `A ↦ ⋂_{a∈A} compat(a)`.
//!
//! Both hot paths are parallelizable over a [`Pool`]: the `R̄` enumeration
//! splits its DFS at the top candidate level into stealable subtree tasks
//! (`forall_multisets`'s internals), and the dominance filter shards its
//! per-configuration maximality checks. Batches go to the **persistent**
//! worker set ([`Pool::map_owned`] — task payloads are `Arc`-owned, so no
//! threads are spawned per call), and parallel results are collected and
//! canonically re-ordered, so every parallel entry point is
//! **byte-identical** to its sequential counterpart at any thread count
//! (enforced by the differential proptests at the workspace root).
//!
//! The parallel (and cache-serving) surface of these operators is the
//! session API, [`crate::engine::Engine`]: it owns the pool handle and a
//! long-lived [`crate::iterate::SubIndexCache`] the `R̄` side's
//! sub-multiset index is served from. The free functions here compute
//! the operators sequentially — they are the references the differential
//! suites compare sessions against (the old pool-taking `*_with`
//! wrappers served their one-release deprecation window and are gone).

use crate::config::{Config, SetConfig, INLINE_DEGREE};
use crate::constraint::{Constraint, SubMultisetIndex};
use crate::diagram::StrengthOrder;
use crate::error::{RelimError, Result};
use crate::inline_vec::InlineVec;
use crate::label::{Alphabet, Label};
use crate::labelset::LabelSet;
use crate::line::Line;
use crate::matching::unit_assignment_feasible;
use crate::problem::Problem;
use crate::rightclosed::right_closed_sets;
use crate::scratch::{with_scratch, ScratchArena};
use relim_pool::Pool;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Largest alphabet the universal-side enumeration accepts — the
/// right-closed-set enumeration limit of
/// [`crate::rightclosed::right_closed_sets`]. Shared by every guard
/// (including the memoized path in [`crate::iterate`]) so the limit can
/// only ever change in one place.
pub const MAX_LABELS: usize = 22;

/// The result of one `R(·)` or `R̄(·)` application.
///
/// `provenance[i]` records which set of *old* labels the new label `i`
/// stands for.
#[derive(Debug, Clone)]
pub struct Step {
    /// The derived problem.
    pub problem: Problem,
    /// For each new label, the set of old labels it represents.
    pub provenance: Vec<LabelSet>,
}

impl Step {
    /// Looks up the new label corresponding to a given set of old labels.
    pub fn label_of_set(&self, set: LabelSet) -> Option<Label> {
        self.provenance.iter().position(|&s| s == set).map(|i| Label::new(i as u8))
    }

    /// Views a configuration of the derived problem as a [`SetConfig`] over
    /// the old alphabet.
    pub fn as_set_config(&self, config: &Config) -> SetConfig {
        config.iter().map(|l| self.provenance[l.index()]).collect()
    }
}

/// Applies `R(·)`: universal step on the edge constraint, existential step on
/// the node constraint.
///
/// # Errors
///
/// Returns [`RelimError::DegenerateProblem`] when the derived problem would
/// have an empty constraint (the input admits no universal pairs or no
/// existential choices).
///
/// # Panics
///
/// Panics if the alphabet exceeds the right-closed enumeration limit
/// (22 labels); see [`crate::rightclosed::right_closed_sets`].
///
/// # Example
///
/// ```
/// use relim_core::{Problem, roundelim::r_step};
///
/// let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
/// let step = r_step(&mis).unwrap();
/// // Lemma 6 of the paper (specialised to the MIS sub-family) implies the
/// // new edge constraint consists of maximal pairs only.
/// assert_eq!(step.problem.edge().degree(), 2);
/// ```
pub fn r_step(p: &Problem) -> Result<Step> {
    let n = p.alphabet().len();
    let order = StrengthOrder::of_constraint(p.edge(), n);
    let compat = p.edge_compat();

    // --- Universal side: maximal pairs via the Galois connection. ---
    let partner = |set: LabelSet| -> LabelSet {
        let mut acc = LabelSet::full(n);
        for a in set.iter() {
            acc = acc.intersect(compat[a.index()]);
        }
        acc
    };
    let mut pairs: Vec<(LabelSet, LabelSet)> = Vec::new();
    for &a in right_closed_sets(&order).iter() {
        let b = partner(a);
        if b.is_empty() {
            continue;
        }
        if partner(b) == a {
            pairs.push(if a <= b { (a, b) } else { (b, a) });
        }
    }
    pairs.sort_unstable();
    pairs.dedup();

    let set_configs: Vec<SetConfig> = pairs.iter().map(|&(a, b)| SetConfig::pair(a, b)).collect();

    finish_step(p, set_configs, UniversalSide::Edge)
}

/// Applies `R̄(·)`: universal step on the node constraint, existential step on
/// the edge constraint. Runs sequentially; use
/// [`crate::engine::Engine::rbar_step`] to shard over a worker pool and
/// serve the sub-multiset index from a session cache (byte-identical).
///
/// # Errors
///
/// Returns [`RelimError::DegenerateProblem`] when a derived constraint
/// would be empty, and [`RelimError::TooManyLabels`] if the alphabet
/// exceeds the right-closed enumeration limit (22 labels).
pub fn rbar_step(p: &Problem) -> Result<Step> {
    rbar_step_pooled(p, &Pool::sequential())
}

/// The pooled `R̄(·)` implementation behind [`rbar_step`] and the engine:
/// builds a fresh sub-multiset index of `p.node()`.
pub(crate) fn rbar_step_pooled(p: &Problem, pool: &Pool) -> Result<Step> {
    let n = p.alphabet().len();
    if n > MAX_LABELS {
        return Err(RelimError::TooManyLabels { requested: n });
    }
    let sub_index = Arc::new(p.node().sub_multiset_index());
    rbar_step_indexed(p, &sub_index, pool)
}

/// The shared `R̄(·)` body: universal enumeration against a prebuilt
/// (possibly cache-served) sub-multiset index, then the dominance filter,
/// both sharded over `pool`.
pub(crate) fn rbar_step_indexed(
    p: &Problem,
    sub_index: &Arc<SubMultisetIndex>,
    pool: &Pool,
) -> Result<Step> {
    let n = p.alphabet().len();
    if n > MAX_LABELS {
        return Err(RelimError::TooManyLabels { requested: n });
    }
    assert_eq!(
        sub_index.degree(),
        p.node().degree(),
        "sub-multiset index was built for a different constraint"
    );
    let order = StrengthOrder::of_constraint(p.node(), n);
    let cands = right_closed_sets(&order);
    let delta = p.delta();

    let raw = forall_multisets_with(&cands, delta, sub_index, pool);
    let maximal = dominance_filter_pooled(raw, pool);
    finish_step(p, maximal, UniversalSide::Node)
}

/// One full round elimination step `Π ↦ R̄(R(Π))`, returning both
/// intermediate results. Runs sequentially; use
/// [`crate::engine::Engine::rr_step`] for the pooled, cache-served
/// session path (byte-identical).
///
/// # Errors
///
/// Returns [`RelimError::DegenerateProblem`] when a derived constraint
/// would be empty, and [`RelimError::TooManyLabels`] when an intermediate
/// alphabet exceeds the enumeration limit.
pub fn rr_step(p: &Problem) -> Result<(Step, Step)> {
    let r = r_step(p)?;
    let rr = rbar_step_pooled(&r.problem, &Pool::sequential())?;
    Ok((r, rr))
}

enum UniversalSide {
    Edge,
    Node,
}

/// Builds the derived problem: names the new labels, installs the universal
/// side, and computes the existential side by the paper's replacement method
/// ("replace each label y by the disjunction of all label sets containing
/// y").
fn finish_step(p: &Problem, universal: Vec<SetConfig>, side: UniversalSide) -> Result<Step> {
    let derived = derive_sides(
        p.alphabet(),
        universal,
        match side {
            UniversalSide::Edge => p.node(),
            UniversalSide::Node => p.edge(),
        },
    )?;
    let (node, edge) = match side {
        UniversalSide::Edge => (derived.existential, derived.universal),
        UniversalSide::Node => (derived.universal, derived.existential),
    };
    let problem = Problem::new(derived.alphabet, node, edge).expect("derived problem is valid");
    Ok(Step { problem, provenance: derived.provenance })
}

/// The two derived constraints of a speedup step, over the new alphabet.
pub(crate) struct DerivedSides {
    pub(crate) alphabet: Alphabet,
    pub(crate) universal: Constraint,
    pub(crate) existential: Constraint,
    pub(crate) provenance: Vec<LabelSet>,
}

/// From a computed universal side, builds the new alphabet (one label per
/// occurring set, named by display), installs the universal constraint and
/// computes the existential constraint from `exists_src` by the paper's
/// replacement method.
pub(crate) fn derive_sides(
    old_alphabet: &Alphabet,
    universal: Vec<SetConfig>,
    exists_src: &Constraint,
) -> Result<DerivedSides> {
    if universal.is_empty() {
        return Err(RelimError::DegenerateProblem {
            message: "universal side is empty: no maximal configurations exist".into(),
        });
    }
    // Collect the new alphabet: sets appearing in the universal side,
    // deterministically ordered by (cardinality, bitmask).
    let mut sets: Vec<LabelSet> = universal.iter().flat_map(|sc| sc.iter()).collect();
    sets.sort_unstable_by_key(|s| (s.len(), s.bits()));
    sets.dedup();

    let names: Vec<String> = sets.iter().map(|s| s.display(old_alphabet)).collect();
    let alphabet =
        Alphabet::new(&names).map_err(|_| RelimError::TooManyLabels { requested: names.len() })?;
    let label_of: std::collections::HashMap<LabelSet, Label> =
        sets.iter().enumerate().map(|(i, &s)| (s, Label::new(i as u8))).collect();

    let universal_constraint = Constraint::from_configs(
        universal.iter().map(|sc| sc.iter().map(|s| label_of[&s]).collect::<Config>()),
    )
    .expect("non-empty universal side");

    // Existential side: replacement method. D(y) = set of new labels whose
    // provenance contains old label y.
    let mut disjunction: Vec<LabelSet> = vec![LabelSet::EMPTY; old_alphabet.len()];
    for (i, s) in sets.iter().enumerate() {
        for y in s.iter() {
            disjunction[y.index()] = disjunction[y.index()].with(Label::new(i as u8));
        }
    }
    let lines: Vec<Line> = exists_src
        .iter()
        .filter_map(|cfg| {
            // Skip configurations containing labels that vanished from
            // the new alphabet (no set contains them): they admit no
            // choice and contribute nothing.
            let groups: Option<Vec<(LabelSet, u32)>> = cfg
                .counts()
                .into_iter()
                .map(|(y, cnt)| {
                    let d = disjunction[y.index()];
                    if d.is_empty() {
                        None
                    } else {
                        Some((d, cnt))
                    }
                })
                .collect();
            groups.map(|g| Line::new(g).expect("non-empty groups"))
        })
        .collect();
    let existential =
        Constraint::from_lines(&lines).map_err(|_| RelimError::DegenerateProblem {
            message: "existential side is empty: every configuration uses a vanished label".into(),
        })?;

    Ok(DerivedSides { alphabet, universal: universal_constraint, existential, provenance: sets })
}

/// Enumerates all configurations `B₁ … B_Δ` over `cands` whose every choice
/// is (a sub-multiset of) a node configuration — the universal condition.
///
/// DFS over non-decreasing candidate indices, carrying the deduplicated set
/// of partial-choice multisets. A partial choice that is not a sub-multiset
/// of any configuration can never be completed, pruning the branch
/// (soundness: the universal condition fails for any completion).
///
/// All DFS state (one frontier buffer per depth, the chosen stack) lives
/// in this thread's [`crate::scratch::ScratchArena`], so repeat calls on
/// a warm worker allocate only for the output vector.
pub(crate) fn forall_multisets(
    cands: &[LabelSet],
    delta: u32,
    sub_index: &SubMultisetIndex,
) -> Vec<SetConfig> {
    if delta == 0 {
        return vec![SetConfig::from_sets(&[])];
    }
    with_scratch(|scratch| {
        scratch.ensure_depth(delta as usize);
        scratch.chosen.clear();
        scratch.frontiers[0].clear();
        scratch.frontiers[0].push(Config::empty());
        let mut out = Vec::new();
        forall_rec(cands, 0, delta, 0, scratch, sub_index, &mut out);
        out
    })
}

/// [`forall_multisets`] with the DFS split at the top candidate level into
/// one stealable subtree task per starting candidate, submitted to the
/// persistent worker set (candidates and index are `Arc`-shared with the
/// `'static` tasks). Subtree outputs are concatenated in candidate order,
/// which is exactly the sequential DFS emission order — output is
/// byte-identical at any thread count. Each worker thread uses its own
/// scratch arena, warm across tasks and calls.
pub(crate) fn forall_multisets_with(
    cands: &[LabelSet],
    delta: u32,
    sub_index: &Arc<SubMultisetIndex>,
    pool: &Pool,
) -> Vec<SetConfig> {
    if delta == 0 {
        return vec![SetConfig::from_sets(&[])];
    }
    if pool.threads() <= 1 || cands.len() <= 1 {
        return forall_multisets(cands, delta, sub_index);
    }
    let tops: Vec<usize> = (0..cands.len()).collect();
    let cands: Arc<Vec<LabelSet>> = Arc::new(cands.to_vec());
    let sub_index = Arc::clone(sub_index);
    let subtrees: Vec<Vec<SetConfig>> = pool.map_owned(tops, move |&top| {
        // Replicate the level-0 loop body for index `top`: extend the empty
        // partial choice by every label of the top candidate, then recurse
        // over non-decreasing candidate indices as usual.
        let cand = cands[top];
        with_scratch(|scratch| {
            scratch.ensure_depth(delta as usize);
            scratch.chosen.clear();
            let mut out = Vec::new();
            let mut next = std::mem::take(&mut scratch.frontiers[1]);
            next.clear();
            for b in cand.iter() {
                let extended = Config::singleton(b);
                if !sub_index.contains(&extended) {
                    scratch.frontiers[1] = next;
                    return out;
                }
                next.push(extended);
            }
            next.sort_unstable();
            next.dedup();
            scratch.frontiers[1] = next;
            scratch.chosen.push(cand);
            forall_rec(&cands, top, delta - 1, 1, scratch, &sub_index, &mut out);
            scratch.chosen.pop();
            out
        })
    });
    subtrees.into_iter().flatten().collect()
}

/// The shared DFS over non-decreasing candidate indices, carrying the
/// deduplicated set of partial-choice multisets (see [`forall_multisets`]).
///
/// `depth` is the number of candidates already chosen; the current
/// frontier is `scratch.frontiers[depth]` and each candidate extension is
/// built in `scratch.frontiers[depth + 1]` (taken out during the write so
/// the two depths never alias), clearing rather than reallocating across
/// sibling subtrees.
fn forall_rec(
    cands: &[LabelSet],
    start: usize,
    remaining: u32,
    depth: usize,
    scratch: &mut ScratchArena,
    sub_index: &SubMultisetIndex,
    out: &mut Vec<SetConfig>,
) {
    if remaining == 0 {
        out.push(SetConfig::from_sets(&scratch.chosen));
        return;
    }
    for (i, &cand) in cands.iter().enumerate().skip(start) {
        // Extend every partial choice by every label of `cand`.
        let mut next = std::mem::take(&mut scratch.frontiers[depth + 1]);
        next.clear();
        let mut ok = true;
        'ext: for m in &scratch.frontiers[depth] {
            for b in cand.iter() {
                let extended = m.with(b);
                if !sub_index.contains(&extended) {
                    ok = false;
                    break 'ext;
                }
                next.push(extended);
            }
        }
        if !ok {
            scratch.frontiers[depth + 1] = next;
            continue;
        }
        next.sort_unstable();
        next.dedup();
        scratch.frontiers[depth + 1] = next;
        scratch.chosen.push(cand);
        forall_rec(cands, i, remaining - 1, depth + 1, scratch, sub_index, out);
        scratch.chosen.pop();
    }
}

/// Removes configurations dominated by another configuration
/// (position-wise `⊆` after the best permutation — a bipartite matching).
///
/// Domination is a strict partial order (transitive, and antisymmetric
/// because mutual domination forces equal cardinality sums and hence equal
/// multisets), so the survivors are exactly the **maximal** configurations
/// — independent of input order. The input order of survivors is preserved.
/// Runs sequentially; use [`crate::engine::Engine::dominance_filter`] to
/// shard the maximality checks (byte-identical).
pub fn dominance_filter(configs: Vec<SetConfig>) -> Vec<SetConfig> {
    dominance_filter_pooled(configs, &Pool::sequential())
}

/// [`dominance_filter`] with the per-configuration maximality checks
/// sharded over `pool`, after a bucketing pass that prunes candidate
/// dominators:
///
/// * configurations are grouped by their sorted cardinality signature, and
///   a configuration can only be dominated from a bucket whose signature
///   dominates its own position-wise;
/// * within a bucket, the support union must be a superset of the
///   candidate's support;
/// * the bipartite matching inside [`dominates`] only runs on pairs that
///   survive both pre-checks.
///
/// Output is byte-identical to [`dominance_filter`] at any thread count.
pub(crate) fn dominance_filter_pooled(configs: Vec<SetConfig>, pool: &Pool) -> Vec<SetConfig> {
    if configs.len() <= 1 {
        return configs;
    }
    // Signature = (sorted cardinalities, support union) per configuration.
    // The cardinality key is an inline vector (degree ≤ 8 stays on the
    // stack), so neither the signature table nor the bucket keys allocate
    // at paper degrees.
    let sigs: Vec<(CardSig, LabelSet)> = configs
        .iter()
        .map(|c| {
            let mut cards: CardSig = c.iter().map(|s| s.len() as u8).collect();
            cards.as_mut_slice().sort_unstable();
            (cards, c.iter().fold(LabelSet::EMPTY, LabelSet::union))
        })
        .collect();
    let mut buckets: BTreeMap<CardSig, Vec<usize>> = BTreeMap::new();
    for (i, (cards, _)) in sigs.iter().enumerate() {
        buckets.entry(cards.clone()).or_default().push(i);
    }
    let buckets: Vec<(CardSig, Vec<usize>)> = buckets.into_iter().collect();

    if pool.threads() <= 1 {
        // Inline path: no shared ownership needed, survivors move out.
        let keep: Vec<bool> =
            (0..configs.len()).map(|i| is_maximal(&configs, &sigs, &buckets, i)).collect();
        return configs.into_iter().zip(keep).filter_map(|(c, k)| k.then_some(c)).collect();
    }

    // Persistent-pool path: the `'static` tasks co-own the configurations
    // and pre-computed signatures; survivors are cloned out by the worker
    // that checked them (same output bytes as the move above).
    let indices: Vec<usize> = (0..configs.len()).collect();
    let shared = Arc::new((configs, sigs, buckets));
    let survivors: Vec<Option<SetConfig>> = pool.map_owned(indices, move |&i| {
        let (configs, sigs, buckets) = &*shared;
        is_maximal(configs, sigs, buckets, i).then(|| configs[i].clone())
    });
    survivors.into_iter().flatten().collect()
}

/// A sorted-cardinality signature: one byte per position, inline at paper
/// degrees (the dominance filter's bucket key).
type CardSig = InlineVec<u8, INLINE_DEGREE>;

/// Whether `configs[i]` is dominated by no other configuration, using the
/// bucket pre-checks of the pooled dominance filter.
fn is_maximal(
    configs: &[SetConfig],
    sigs: &[(CardSig, LabelSet)],
    buckets: &[(CardSig, Vec<usize>)],
    i: usize,
) -> bool {
    let (cards_i, support_i) = &sigs[i];
    for (cards_j, members) in buckets {
        // A dominator's sorted cardinality vector must dominate ours
        // position-wise (any witnessing matching only grows sets).
        if cards_j.len() != cards_i.len()
            || !cards_i.iter().zip(cards_j.iter()).all(|(a, b)| a <= b)
        {
            continue;
        }
        for &j in members {
            if j != i && support_i.is_subset_of(sigs[j].1) && dominates(&configs[j], &configs[i]) {
                return false;
            }
        }
    }
    true
}

/// The seed's quadratic dominance filter, kept verbatim as the reference
/// implementation for differential tests of the bucketed/sharded rewrite.
pub fn dominance_filter_reference(configs: Vec<SetConfig>) -> Vec<SetConfig> {
    let mut keep = vec![true; configs.len()];
    for i in 0..configs.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..configs.len() {
            if i == j || !keep[i] {
                continue;
            }
            if keep[j] && dominates(&configs[j], &configs[i]) {
                keep[i] = false;
            }
        }
    }
    configs.into_iter().zip(keep).filter_map(|(c, k)| k.then_some(c)).collect()
}

/// Whether `big` dominates `small`: `big ≠ small` and there is a perfect
/// matching pairing every position of `small` with a distinct position of
/// `big` such that `small_i ⊆ big_j`.
pub fn dominates(big: &SetConfig, small: &SetConfig) -> bool {
    if big == small || big.degree() != small.degree() {
        return false;
    }
    let big_sets = big.as_slice();
    let small_sets = small.as_slice();
    let options: InlineVec<u64, INLINE_DEGREE> = small_sets
        .iter()
        .map(|&s| {
            let mut mask = 0u64;
            for (j, &b) in big_sets.iter().enumerate() {
                if s.is_subset_of(b) {
                    mask |= 1 << j;
                }
            }
            mask
        })
        .collect();
    let options = options.as_slice();
    // Hall-style pre-check before the matching: every run of equal sets in
    // `small` (they share one options mask, since `small` is sorted) needs
    // at least as many distinct superset positions in `big`.
    let mut k = 0;
    while k < small_sets.len() {
        let mut m = k;
        while m < small_sets.len() && small_sets[m] == small_sets[k] {
            m += 1;
        }
        if (options[k].count_ones() as usize) < m - k {
            return false;
        }
        k = m;
    }
    unit_assignment_feasible(options, big_sets.len())
}

/// Brute-force reference implementation of the universal edge side, without
/// the right-closedness and Galois accelerations. Exposed for differential
/// testing; exponential in `|Σ|`.
///
/// # Errors
///
/// Returns an error if the alphabet has more than 16 labels.
pub fn r_step_edge_bruteforce(p: &Problem) -> Result<Vec<SetConfig>> {
    let n = p.alphabet().len();
    if n > 16 {
        return Err(RelimError::TooManyLabels { requested: n });
    }
    let compat = p.edge_compat();
    let universe = LabelSet::full(n);
    let mut all: Vec<SetConfig> = Vec::new();
    for a in crate::labelset::subsets_nonempty(universe) {
        for b in crate::labelset::subsets_nonempty(universe) {
            if b.bits() < a.bits() {
                continue;
            }
            let ok = a.iter().all(|x| b.is_subset_of(compat[x.index()]));
            if ok {
                all.push(SetConfig::new(vec![a, b]));
            }
        }
    }
    Ok(dominance_filter(all))
}

/// Brute-force reference implementation of the universal node side.
/// Exponential; only usable for tiny alphabets and degrees.
///
/// # Errors
///
/// Returns an error if the alphabet has more than 8 labels.
pub fn rbar_step_node_bruteforce(p: &Problem) -> Result<Vec<SetConfig>> {
    let n = p.alphabet().len();
    if n > 8 {
        return Err(RelimError::TooManyLabels { requested: n });
    }
    let universe = LabelSet::full(n);
    let all_sets: Vec<LabelSet> = crate::labelset::subsets_nonempty(universe).collect();
    let sub_index = p.node().sub_multiset_index();
    let raw = forall_multisets(&all_sets_sorted(all_sets), p.delta(), &sub_index);
    Ok(dominance_filter(raw))
}

fn all_sets_sorted(mut sets: Vec<LabelSet>) -> Vec<LabelSet> {
    sets.sort_unstable_by_key(|s| (s.len(), s.bits()));
    sets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mis3() -> Problem {
        Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap()
    }

    #[test]
    fn r_step_mis_edge_pairs_are_maximal_and_valid() {
        let p = mis3();
        let step = r_step(&p).unwrap();
        // Every pair's choices must be in E; pairs must be mutually
        // non-dominating.
        let compat = p.edge_compat();
        let pairs: Vec<SetConfig> =
            step.problem.edge().iter().map(|c| step.as_set_config(c)).collect();
        for sc in &pairs {
            let s = sc.as_slice();
            for a in s[0].iter() {
                assert!(s[1].is_subset_of(compat[a.index()]), "non-universal pair {sc:?}");
            }
        }
        for x in &pairs {
            for y in &pairs {
                assert!(!dominates(x, y), "{y:?} dominated by {x:?}");
            }
        }
    }

    #[test]
    fn r_step_matches_bruteforce_on_mis() {
        let p = mis3();
        let step = r_step(&p).unwrap();
        let mut fast: Vec<SetConfig> =
            step.problem.edge().iter().map(|c| step.as_set_config(c)).collect();
        let mut brute = r_step_edge_bruteforce(&p).unwrap();
        fast.sort();
        brute.sort();
        assert_eq!(fast, brute);
    }

    #[test]
    fn rbar_matches_bruteforce_on_small_problem() {
        // Sinkless-orientation-like toy: 2 labels, Δ=3.
        let p = Problem::from_text("O [O I]^2", "O I").unwrap();
        let r = r_step(&p).unwrap();
        let mut fast: Vec<SetConfig> = {
            let step = rbar_step(&r.problem).unwrap();
            step.problem.node().iter().map(|c| step.as_set_config(c)).collect()
        };
        let mut brute = rbar_step_node_bruteforce(&r.problem).unwrap();
        fast.sort();
        brute.sort();
        assert_eq!(fast, brute);
    }

    #[test]
    fn exists_side_replacement_method() {
        // For MIS, N_{R(Π)} is obtained by replacing M, P, O by the
        // disjunctions of new labels containing them; the result must admit a
        // choice in N for every configuration.
        let p = mis3();
        let step = r_step(&p).unwrap();
        for cfg in step.problem.node().iter() {
            let sc = step.as_set_config(cfg);
            // Verify the existential condition by explicit search.
            let mut found = false;
            let sets = sc.as_slice();
            let mut pick = vec![Label::new(0); sets.len()];
            fn search(
                sets: &[LabelSet],
                i: usize,
                pick: &mut [Label],
                node: &Constraint,
                found: &mut bool,
            ) {
                if *found {
                    return;
                }
                if i == sets.len() {
                    if node.contains(&Config::new(pick.to_vec())) {
                        *found = true;
                    }
                    return;
                }
                for l in sets[i].iter() {
                    pick[i] = l;
                    search(sets, i + 1, pick, node, found);
                }
            }
            search(sets, 0, &mut pick, p.node(), &mut found);
            assert!(found, "config {sc:?} admits no choice in N");
        }
    }

    #[test]
    fn rbar_parallel_matches_sequential_bytewise() {
        // MIS after one R step is the heaviest node-side enumeration in the
        // unit suite; the parallel engine must reproduce it exactly.
        let p = mis3();
        let r = r_step(&p).unwrap();
        let seq = rbar_step(&r.problem).unwrap();
        for threads in [2, 3, 8] {
            let engine = crate::engine::Engine::builder().threads(threads).build();
            let par = engine.rbar_step(&r.problem).unwrap();
            assert_eq!(par.problem.render(), seq.problem.render(), "threads = {threads}");
            assert_eq!(par.provenance, seq.provenance, "threads = {threads}");
        }
    }

    #[test]
    fn dominance_filter_matches_reference() {
        // All subsets of a 4-label universe in pairs: a dense dominance
        // structure exercising buckets, pre-checks, and the matching.
        let sets: Vec<LabelSet> = crate::labelset::subsets_nonempty(LabelSet::full(4)).collect();
        let mut configs = Vec::new();
        for (i, &a) in sets.iter().enumerate() {
            for &b in sets.iter().skip(i) {
                configs.push(SetConfig::new(vec![a, b]));
            }
        }
        let expected = dominance_filter_reference(configs.clone());
        assert_eq!(dominance_filter(configs.clone()), expected);
        for threads in [2, 8] {
            let engine = crate::engine::Engine::builder().threads(threads).build();
            assert_eq!(engine.dominance_filter(configs.clone()), expected, "threads = {threads}");
        }
    }

    #[test]
    fn dominance_basic() {
        let a = LabelSet::from_bits(0b01);
        let ab = LabelSet::from_bits(0b11);
        let x = SetConfig::new(vec![a, a]);
        let y = SetConfig::new(vec![ab, a]);
        assert!(dominates(&y, &x));
        assert!(!dominates(&x, &y));
        assert!(!dominates(&x, &x));
        let filtered = dominance_filter(vec![x, y.clone()]);
        assert_eq!(filtered, vec![y]);
    }
}
