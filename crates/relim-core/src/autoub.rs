//! Automatic upper-bound search (the round-eliminator's "autoub" workflow).
//!
//! An upper-bound sequence (paper §1.2) is a chain `Π₀ → Π₁ → …` where
//! each `Π_{i+1}` is a **restriction** (hardening) of `R̄(R(Π_i))`: a
//! solution of `Π_{i+1}` is verbatim a solution of `R̄(R(Π_i))`, and by
//! Theorem 3 a `t`-round algorithm for `R̄(R(Π_i))` yields a
//! `(t+1)`-round algorithm for `Π_i` on graphs of girth `≥ 2t + 4`. If
//! some `Π_T` is 0-round solvable, `Π₀` is solvable in `T` rounds.
//!
//! Three 0-round endpoints give three kinds of bounds:
//!
//! * [`zeroround::universal_witness`] — `T` rounds in the bare PN model;
//! * [`zeroround::solvable_deterministically`] — `T` rounds given a
//!   Δ-edge coloring as input (the speedup theorem holds in the presence
//!   of such t-independent inputs, paper §2.3);
//! * [`zeroround::coloring_witness`] — `T` rounds given a proper
//!   c-vertex coloring, hence `T + O(log* n)` in the LOCAL model for
//!   `c ≥ Δ + 1` via any standard coloring algorithm. This is the
//!   endpoint that certifies `O(Δ + log* n)`-style upper bounds.
//!
//! Note that the bare criteria may start to fire only after a few steps:
//! 0-round algorithms cannot see the edge port numbers (the orientation
//! input of the paper's PN model, §2.1), but 1-round algorithms can — the
//! same radius-0/radius-1 asymmetry the paper's Lemma 12 proof points
//! out. Triviality never *disappears* along a chain, but it can appear.
//!
//! Hardening keeps the alphabet within budget by deleting labels
//! (restriction: configurations mentioning them disappear). Deleting too
//! much can make the chain unsolvable — then no bound is found, but
//! soundness is never at risk, and [`verify_ub`] replays the whole chain
//! from scratch.

use crate::config::Config;
use crate::error::{RelimError, Result};
use crate::label::Label;
use crate::problem::Problem;
use crate::roundelim::{rr_step, Step};
use crate::simplify;
use crate::zeroround;

/// Options for [`crate::engine::Engine::auto_upper_bound`].
#[derive(Debug, Clone)]
pub struct AutoUbOptions {
    /// Maximum number of `R̄(R(·))` steps.
    pub max_steps: usize,
    /// Harden (delete labels) after each step until the alphabet has at
    /// most this many labels.
    pub label_budget: usize,
    /// Also test 0-round solvability given a proper c-vertex coloring for
    /// this many colors (must be ≥ 2 when present).
    pub coloring: Option<usize>,
}

impl Default for AutoUbOptions {
    fn default() -> Self {
        AutoUbOptions { max_steps: 8, label_budget: 8, coloring: None }
    }
}

/// The kind of 0-round endpoint that terminated an upper-bound chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UbKind {
    /// Bare PN model: `rounds` rounds on high-girth Δ-regular graphs.
    Pn,
    /// Given a Δ-edge coloring as input.
    EdgeColoring,
    /// Given a proper c-vertex coloring as input: `rounds + O(log* n)` in
    /// the LOCAL model when `c ≥ Δ + 1`.
    VertexColoring {
        /// Number of colors of the promised input coloring.
        colors: usize,
    },
}

/// A certified upper bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpperBound {
    /// Rounds after which the chain problem became 0-round solvable.
    pub rounds: usize,
    /// What input (if any) the 0-round endpoint assumes.
    pub kind: UbKind,
    /// The witnessing node configuration(s) of the final problem.
    pub witness: Vec<Config>,
}

/// One link of an upper-bound chain.
#[derive(Debug, Clone)]
pub struct UbStep {
    /// `R̄(R(prev))` with unused labels dropped, before hardening.
    pub raw: Problem,
    /// Labels deleted from `raw`, in order, by name.
    pub removals: Vec<String>,
    /// The hardened problem — the next chain element.
    pub problem: Problem,
}

/// Why [`crate::engine::Engine::auto_upper_bound`] gave up, when it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UbFailure {
    /// The step budget ran out before any endpoint fired.
    MaxSteps,
    /// Hardening could not bring the alphabet within budget without
    /// emptying a constraint.
    CannotHarden,
    /// The engine failed (label overflow, degenerate problem, …).
    Engine(String),
}

/// The result of an automatic upper-bound search.
#[derive(Debug, Clone)]
pub struct AutoUbOutcome {
    /// Chain element 0 (the input, unused labels dropped).
    pub initial: Problem,
    /// Chain links; link `i` turns element `i` into element `i+1`.
    pub steps: Vec<UbStep>,
    /// The certified bound, if one was found.
    pub bound: Option<UpperBound>,
    /// Why the search stopped without a bound, otherwise.
    pub failure: Option<UbFailure>,
    /// The coloring parameter that was tested, if any.
    pub coloring: Option<usize>,
}

impl AutoUbOutcome {
    /// The chain elements `Π₀, Π₁, …` (input plus one per step).
    pub fn chain(&self) -> impl Iterator<Item = &Problem> {
        std::iter::once(&self.initial).chain(self.steps.iter().map(|s| &s.problem))
    }
}

fn endpoint(p: &Problem, rounds: usize, coloring: Option<usize>) -> Option<UpperBound> {
    if let Some(w) = zeroround::universal_witness(p) {
        return Some(UpperBound { rounds, kind: UbKind::Pn, witness: vec![w] });
    }
    if let Some(w) = zeroround::analyze(p).witness {
        return Some(UpperBound { rounds, kind: UbKind::EdgeColoring, witness: vec![w] });
    }
    if let Some(c) = coloring {
        if let Some(ws) = zeroround::coloring_witness(p, c) {
            return Some(UpperBound {
                rounds,
                kind: UbKind::VertexColoring { colors: c },
                witness: ws,
            });
        }
    }
    None
}

/// The search loop behind [`crate::engine::Engine::auto_upper_bound`],
/// parameterized over how one `Π ↦ R̄(R(Π))` application is computed (the
/// engine passes its cache-serving session step).
pub(crate) fn auto_upper_bound_with_step(
    p: &Problem,
    opts: &AutoUbOptions,
    mut step_fn: impl FnMut(&Problem) -> Result<(Step, Step)>,
) -> AutoUbOutcome {
    let (initial, _) = p.drop_unused_labels();
    let mut outcome = AutoUbOutcome {
        initial: initial.clone(),
        steps: Vec::new(),
        bound: None,
        failure: None,
        coloring: opts.coloring,
    };
    if let Some(b) = endpoint(&initial, 0, opts.coloring) {
        outcome.bound = Some(b);
        return outcome;
    }

    let mut prev = initial;
    for step in 1..=opts.max_steps {
        let rbar = match step_fn(&prev) {
            Ok((_, rbar)) => rbar,
            Err(e) => {
                outcome.failure = Some(UbFailure::Engine(e.to_string()));
                return outcome;
            }
        };
        let (raw, _) = rbar.problem.drop_unused_labels();

        let mut removals = Vec::new();
        let mut cur = raw.clone();
        while cur.alphabet().len() > opts.label_budget {
            match best_removal(&cur) {
                Some((name, hardened)) => {
                    removals.push(name);
                    cur = hardened;
                }
                None => {
                    outcome.steps.push(UbStep { raw, removals, problem: cur });
                    outcome.failure = Some(UbFailure::CannotHarden);
                    return outcome;
                }
            }
        }

        outcome.steps.push(UbStep { raw, removals, problem: cur.clone() });
        if let Some(b) = endpoint(&cur, step, opts.coloring) {
            outcome.bound = Some(b);
            return outcome;
        }
        prev = cur;
    }
    outcome.failure = Some(UbFailure::MaxSteps);
    outcome
}

/// Picks the label whose deletion keeps both constraints non-empty and
/// preserves the most configurations.
fn best_removal(p: &Problem) -> Option<(String, Problem)> {
    let mut best: Option<(Label, Problem, usize)> = None;
    for l in p.alphabet().labels() {
        let Ok(hardened) = simplify::remove_label(p, l) else { continue };
        let kept = hardened.node().len() + hardened.edge().len();
        if best.as_ref().is_none_or(|(_, _, k)| kept > *k) {
            best = Some((l, hardened, kept));
        }
    }
    best.map(|(l, hardened, _)| (p.alphabet().name(l).to_string(), hardened))
}

/// Replays and verifies an [`AutoUbOutcome`] from scratch.
///
/// Re-runs every `R̄(R(·))` step, re-applies the recorded label deletions
/// by name, checks the chain matches, and re-checks the claimed endpoint
/// on the final problem. Returns the certified rounds when a bound is
/// claimed.
///
/// # Errors
///
/// Returns [`RelimError::InvalidParameter`] on the first mismatch, or any
/// engine error hit during the replay.
pub fn verify_ub(outcome: &AutoUbOutcome) -> Result<Option<usize>> {
    let mismatch = |message: String| RelimError::InvalidParameter { message };
    let mut prev = outcome.initial.clone();
    for (i, step) in outcome.steps.iter().enumerate() {
        let (_, rbar) = rr_step(&prev)?;
        let (raw, _) = rbar.problem.drop_unused_labels();
        if !crate::iso::isomorphic(&raw, &step.raw) {
            return Err(mismatch(format!("step {i}: recorded raw problem does not match replay")));
        }
        let mut cur = raw;
        for name in &step.removals {
            let l = cur.alphabet().label(name)?;
            cur = simplify::remove_label(&cur, l)?;
        }
        if !crate::iso::isomorphic(&cur, &step.problem) {
            return Err(mismatch(format!(
                "step {i}: removals do not reproduce the recorded problem"
            )));
        }
        prev = cur;
    }
    match &outcome.bound {
        None => Ok(None),
        Some(bound) => {
            if bound.rounds != outcome.steps.len() {
                return Err(mismatch(format!(
                    "bound claims {} rounds but the chain has {} steps",
                    bound.rounds,
                    outcome.steps.len()
                )));
            }
            let ok = match bound.kind {
                UbKind::Pn => zeroround::solvable_pn_universal(&prev),
                UbKind::EdgeColoring => zeroround::solvable_deterministically(&prev),
                UbKind::VertexColoring { colors } => {
                    zeroround::coloring_witness(&prev, colors).is_some()
                }
            };
            if !ok {
                return Err(mismatch("claimed endpoint does not hold on the final problem".into()));
            }
            Ok(Some(bound.rounds))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn auto_upper_bound(p: &Problem, opts: &AutoUbOptions) -> AutoUbOutcome {
        Engine::sequential().auto_upper_bound(p, opts)
    }

    #[test]
    fn trivial_problem_zero_rounds() {
        let p = Problem::from_text("A A A", "A A").unwrap();
        let outcome = auto_upper_bound(&p, &AutoUbOptions::default());
        let bound = outcome.bound.clone().expect("found");
        assert_eq!(bound.rounds, 0);
        assert_eq!(bound.kind, UbKind::Pn);
        assert_eq!(verify_ub(&outcome).unwrap(), Some(0));
    }

    #[test]
    fn perfect_matching_zero_rounds_with_edge_coloring() {
        let pm = Problem::from_text("M O", "M M\nO O").unwrap();
        let outcome = auto_upper_bound(&pm, &AutoUbOptions::default());
        let bound = outcome.bound.clone().expect("found");
        assert_eq!(bound.rounds, 0);
        assert_eq!(bound.kind, UbKind::EdgeColoring);
        assert!(verify_ub(&outcome).is_ok());
    }

    #[test]
    fn two_coloring_needs_the_coloring_input() {
        let p = Problem::from_text("A A A\nB B B", "A B").unwrap();
        // Without the coloring endpoint the bare criteria do not fire
        // within the step budget (2-coloring needs symmetry breaking).
        let plain =
            auto_upper_bound(&p, &AutoUbOptions { max_steps: 2, label_budget: 12, coloring: None });
        assert!(plain.bound.is_none());
        // With it, 0 rounds.
        let with = auto_upper_bound(&p, &AutoUbOptions { coloring: Some(2), ..Default::default() });
        let bound = with.bound.clone().expect("found");
        assert_eq!(bound.rounds, 0);
        assert_eq!(bound.kind, UbKind::VertexColoring { colors: 2 });
    }

    #[test]
    fn mis_on_cycles_bounded_given_coloring() {
        // MIS at Δ = 2 (cycles): given a proper 3-coloring the classic
        // greedy-by-color algorithm takes O(1) rounds; the chain should
        // terminate within a few steps.
        let mis2 = Problem::from_text("M M\nP O", "M [P O]\nO O").unwrap();
        let opts = AutoUbOptions { max_steps: 6, label_budget: 14, coloring: Some(3) };
        let outcome = auto_upper_bound(&mis2, &opts);
        let bound =
            outcome.bound.clone().expect("MIS on cycles has a constant bound given a 3-coloring");
        assert!(bound.rounds <= 6);
        assert!(matches!(bound.kind, UbKind::VertexColoring { colors: 3 }));
        assert_eq!(verify_ub(&outcome).unwrap(), Some(bound.rounds));
    }

    #[test]
    fn triviality_can_appear_after_one_step() {
        // N = {01, 02, 12, 22}, E = {02, 11} at Δ = 2: not 0-round
        // solvable (no configuration passes either criterion), but its
        // R̄(R(·)) derivative is trivial — after one round nodes see the
        // edge orientation input that radius-0 views lack (cf. the paper's
        // Lemma 12 proof remark). So the upper-bound search legitimately
        // certifies 1 round for it.
        let p = Problem::from_text("A B\nA C\nB C\nC C", "A C\nB B").unwrap();
        assert!(!zeroround::solvable_pn_universal(&p));
        assert!(!zeroround::solvable_deterministically(&p));
        let outcome =
            auto_upper_bound(&p, &AutoUbOptions { max_steps: 2, label_budget: 16, coloring: None });
        let bound = outcome.bound.clone().expect("one-round bound");
        assert_eq!(bound.rounds, 1);
        assert!(verify_ub(&outcome).is_ok());
    }

    #[test]
    fn verify_rejects_tampering() {
        let pm = Problem::from_text("M O", "M M\nO O").unwrap();
        let mut outcome = auto_upper_bound(&pm, &AutoUbOptions::default());
        outcome.bound.as_mut().unwrap().rounds = 1;
        assert!(verify_ub(&outcome).is_err());
    }

    #[test]
    fn failure_reports_max_steps() {
        let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let outcome = auto_upper_bound(
            &mis,
            &AutoUbOptions { max_steps: 1, label_budget: 10, coloring: None },
        );
        assert!(outcome.bound.is_none());
        assert_eq!(outcome.failure, Some(UbFailure::MaxSteps));
        assert_eq!(verify_ub(&outcome).unwrap(), None);
    }
}
