//! Small bipartite assignment feasibility tests.
//!
//! Several engine operations reduce to the question *"can `n` positions be
//! assigned to capacity-bounded groups, respecting per-position options?"* —
//! e.g. membership of a configuration in a condensed line (Hall's condition)
//! or the relaxation test of Definition 7. The instances are tiny (≤ 64
//! positions, ≤ 32 groups), so a simple augmenting-path matching is ideal.

/// Decides whether every position can be assigned to some allowed group
/// without exceeding group capacities.
///
/// `options[i]` is a bitmask over group indices that position `i` accepts;
/// `caps[g]` is the capacity of group `g`. Returns an assignment
/// (`result[i] = g`) if one exists.
///
/// # Example
///
/// ```
/// use relim_core::matching::assign_positions;
///
/// // Two positions, both only accept group 0, which has capacity 1.
/// assert!(assign_positions(&[0b01, 0b01], &[1, 5]).is_none());
/// // Capacity 2 makes it feasible.
/// assert!(assign_positions(&[0b01, 0b01], &[2, 5]).is_some());
/// ```
pub fn assign_positions(options: &[u64], caps: &[u32]) -> Option<Vec<usize>> {
    let n = options.len();
    let g = caps.len();
    debug_assert!(g <= 64);
    // Remaining capacity per group; slot assignment per position.
    let mut remaining: Vec<u32> = caps.to_vec();
    let mut assigned: Vec<Option<usize>> = vec![None; n];
    // For augmenting paths we need, per group, the positions currently using
    // it (a group can host several positions up to its capacity).
    let mut users: Vec<Vec<usize>> = vec![Vec::new(); g];

    for start in 0..n {
        // Try to place position `start`, possibly displacing others.
        let mut visited_groups = vec![false; g];
        if !try_place(
            start,
            options,
            &mut remaining,
            &mut assigned,
            &mut users,
            &mut visited_groups,
        ) {
            return None;
        }
    }
    Some(assigned.into_iter().map(|a| a.expect("all positions placed")).collect())
}

fn try_place(
    pos: usize,
    options: &[u64],
    remaining: &mut [u32],
    assigned: &mut [Option<usize>],
    users: &mut [Vec<usize>],
    visited_groups: &mut [bool],
) -> bool {
    let opts = options[pos];
    // First pass: any group with spare capacity?
    for grp in 0..remaining.len() {
        if opts & (1 << grp) != 0 && remaining[grp] > 0 {
            remaining[grp] -= 1;
            assigned[pos] = Some(grp);
            users[grp].push(pos);
            return true;
        }
    }
    // Second pass: try to displace a current user of an allowed group.
    for grp in 0..remaining.len() {
        if opts & (1 << grp) == 0 || visited_groups[grp] {
            continue;
        }
        visited_groups[grp] = true;
        let current: Vec<usize> = users[grp].clone();
        for other in current {
            // Temporarily evict `other` and try to re-place it elsewhere.
            let idx = users[grp].iter().position(|&p| p == other).expect("user listed");
            users[grp].swap_remove(idx);
            assigned[other] = None;
            if try_place(other, options, remaining, assigned, users, visited_groups) {
                assigned[pos] = Some(grp);
                users[grp].push(pos);
                return true;
            }
            // Restore.
            assigned[other] = Some(grp);
            users[grp].push(other);
        }
    }
    false
}

/// Allocation-free feasibility test for the unit-capacity special case of
/// [`assign_positions`]: can every position be matched to a *distinct*
/// allowed group (a perfect matching on the position side)?
///
/// This is the inner test of the dominance filter, called once per
/// surviving candidate pair in the `R̄` hot loop — millions of times per
/// step — so all state is stack-resident: the group→position matching in a
/// fixed array, the per-augmentation visited set as a `u64` bitmask.
/// Equivalent to `assign_positions(options, &vec![1; groups]).is_some()`
/// (pinned by a differential test below).
///
/// # Example
///
/// ```
/// use relim_core::matching::unit_assignment_feasible;
///
/// // Both positions accept only group 0: no distinct assignment.
/// assert!(!unit_assignment_feasible(&[0b01, 0b01], 2));
/// // Augmenting path: position 0 moves to group 1 to free group 0.
/// assert!(unit_assignment_feasible(&[0b11, 0b01], 2));
/// ```
pub fn unit_assignment_feasible(options: &[u64], groups: usize) -> bool {
    debug_assert!(groups <= 64);
    if options.len() > groups {
        return false;
    }
    // match_of[g] = position currently matched to group g (MAX = free).
    let mut match_of = [u8::MAX; 64];
    for pos in 0..options.len() {
        let mut visited = 0u64;
        if !augment(pos, options, &mut match_of, &mut visited, groups) {
            return false;
        }
    }
    true
}

/// Kuhn augmenting step for [`unit_assignment_feasible`]: tries to match
/// `pos`, displacing current matches along an alternating path.
fn augment(
    pos: usize,
    options: &[u64],
    match_of: &mut [u8; 64],
    visited: &mut u64,
    groups: usize,
) -> bool {
    let mut opts = options[pos] & !*visited;
    while opts != 0 {
        let grp = opts.trailing_zeros() as usize;
        opts &= opts - 1;
        if grp >= groups || *visited & (1 << grp) != 0 {
            continue;
        }
        *visited |= 1 << grp;
        if match_of[grp] == u8::MAX
            || augment(match_of[grp] as usize, options, match_of, visited, groups)
        {
            match_of[grp] = pos as u8;
            return true;
        }
    }
    false
}

/// Feasibility of a bipartite *transportation* instance: `supply[i]` units at
/// each left node, `caps[g]` capacity at each right node, `options[i]` the
/// right nodes reachable from left node `i`. Decides whether all supply can
/// be shipped.
///
/// This is the multiplicity-aware version of [`assign_positions`], used for
/// configuration-in-line membership where both the configuration labels and
/// the line groups carry multiplicities.
///
/// # Example
///
/// ```
/// use relim_core::matching::transport_feasible;
///
/// // 3 units at left node 0, which can reach groups 0 (cap 2) and 1 (cap 1).
/// assert!(transport_feasible(&[3], &[0b11], &[2, 1]));
/// assert!(!transport_feasible(&[4], &[0b11], &[2, 1]));
/// ```
pub fn transport_feasible(supply: &[u32], options: &[u64], caps: &[u32]) -> bool {
    debug_assert_eq!(supply.len(), options.len());
    let total: u32 = supply.iter().sum();
    let reachable_cap: u64 = {
        // Quick necessary check: total capacity of reachable groups.
        let mut any: u64 = 0;
        for &o in options {
            any |= o;
        }
        caps.iter().enumerate().filter(|(g, _)| any & (1 << *g) != 0).map(|(_, &c)| c as u64).sum()
    };
    if (total as u64) > reachable_cap {
        return false;
    }
    // Max-flow via repeated augmenting BFS on a tiny network.
    // Nodes: 0 = source, 1..=L lefts, L+1..=L+G rights, L+G+1 = sink.
    let l = supply.len();
    let g = caps.len();
    let n = l + g + 2;
    let sink = n - 1;
    // Capacity matrix (small sizes, dense is fine).
    let mut cap = vec![vec![0i64; n]; n];
    for i in 0..l {
        cap[0][1 + i] = supply[i] as i64;
        for grp in 0..g {
            if options[i] & (1 << grp) != 0 {
                cap[1 + i][1 + l + grp] = i64::MAX / 4;
            }
        }
    }
    for grp in 0..g {
        cap[1 + l + grp][sink] = caps[grp] as i64;
    }
    let mut flow = 0i64;
    loop {
        // BFS for augmenting path.
        let mut parent = vec![usize::MAX; n];
        parent[0] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(0usize);
        while let Some(u) = queue.pop_front() {
            for v in 0..n {
                if parent[v] == usize::MAX && cap[u][v] > 0 {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if parent[sink] == usize::MAX {
            break;
        }
        // Find bottleneck.
        let mut bottleneck = i64::MAX;
        let mut v = sink;
        while v != 0 {
            let u = parent[v];
            bottleneck = bottleneck.min(cap[u][v]);
            v = u;
        }
        let mut v = sink;
        while v != 0 {
            let u = parent[v];
            cap[u][v] -= bottleneck;
            cap[v][u] += bottleneck;
            v = u;
        }
        flow += bottleneck;
    }
    flow == total as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_simple() {
        // 3 positions; groups: cap [1,1,1]; options give a unique solution.
        let asg = assign_positions(&[0b001, 0b011, 0b111], &[1, 1, 1]).unwrap();
        assert_eq!(asg[0], 0);
        assert_eq!(asg[1], 1);
        assert_eq!(asg[2], 2);
    }

    #[test]
    fn assign_needs_augmenting() {
        // Position 0 could take group 1, but greedy puts it in 0; position 1
        // only accepts group 0, forcing an augmenting path.
        let asg = assign_positions(&[0b11, 0b01], &[1, 1]).unwrap();
        assert_eq!(asg[1], 0);
        assert_eq!(asg[0], 1);
    }

    #[test]
    fn assign_infeasible() {
        assert!(assign_positions(&[0b01, 0b01, 0b10], &[1, 1]).is_none());
    }

    #[test]
    fn assign_empty() {
        assert_eq!(assign_positions(&[], &[1]).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn unit_feasibility_matches_assign_positions_with_unit_caps() {
        // Exhaustive differential over every options table for 3 positions
        // and 3 groups (8^3 tables), plus shape edge cases.
        for a in 0..8u64 {
            for b in 0..8u64 {
                for c in 0..8u64 {
                    let options = [a, b, c];
                    let expected = assign_positions(&options, &[1, 1, 1]).is_some();
                    assert_eq!(
                        unit_assignment_feasible(&options, 3),
                        expected,
                        "options {options:?}"
                    );
                }
            }
        }
        assert!(unit_assignment_feasible(&[], 0));
        // More positions than groups can never match distinctly.
        assert!(!unit_assignment_feasible(&[0b1, 0b1], 1));
    }

    #[test]
    fn transport_matches_assignment_semantics() {
        // supply 2 of label A (reaches groups 0,1) and 1 of label B (group 1).
        // caps: [1, 2] -> feasible (A->0, A->1, B->1).
        assert!(transport_feasible(&[2, 1], &[0b11, 0b10], &[1, 2]));
        // caps: [1, 1] -> infeasible (3 units, only 2 reachable capacity).
        assert!(!transport_feasible(&[2, 1], &[0b11, 0b10], &[1, 1]));
    }

    #[test]
    fn transport_hall_violation() {
        // Two labels each supply 1, both only reach group 0 with cap 1.
        assert!(!transport_feasible(&[1, 1], &[0b01, 0b01], &[1, 1]));
    }

    #[test]
    fn transport_exact_capacity() {
        assert!(transport_feasible(&[2, 2], &[0b01, 0b10], &[2, 2]));
        assert!(!transport_feasible(&[3, 2], &[0b01, 0b10], &[2, 2]));
    }
}
