//! Condensing explicit constraints back into compact lines.
//!
//! The engine stores constraints explicitly; papers (and the
//! round-eliminator UI) write them as condensed configurations like
//! `M [P O]^(Δ−1)`. [`condense`] greedily recovers such lines: it grows
//! disjunctions as long as the line's expansion stays inside the
//! constraint, then covers remaining configurations with further lines.
//! The result is a *sound cover*: the union of the lines' expansions equals
//! the constraint exactly (asserted), though it is not guaranteed to be the
//! minimum-size description.

use crate::constraint::Constraint;
use crate::label::Label;
use crate::labelset::LabelSet;
use crate::line::Line;

/// Greedily condenses a constraint into lines whose expansions exactly
/// cover it.
///
/// # Example
///
/// ```
/// use relim_core::{condense, Problem};
///
/// let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
/// let lines = condense::condense(mis.edge());
/// // {MP, MO, OO} condenses to two lines: `M [P O]` and `O O`
/// // (or an equivalent cover).
/// assert!(lines.len() <= 2);
/// ```
pub fn condense(constraint: &Constraint) -> Vec<Line> {
    let alphabet_size = 32 - constraint.support().bits().leading_zeros() as usize;
    let mut covered: std::collections::HashSet<_> = std::collections::HashSet::new();
    let mut lines = Vec::new();

    for cfg in constraint.iter() {
        if covered.contains(cfg) {
            continue;
        }
        // Seed line: the configuration itself, groups = (singleton, count).
        let mut groups: Vec<(LabelSet, u32)> =
            cfg.counts().into_iter().map(|(l, c)| (LabelSet::singleton(l), c)).collect();
        // Grow each group's disjunction while the expansion stays inside.
        let mut changed = true;
        while changed {
            changed = false;
            for gi in 0..groups.len() {
                for li in 0..alphabet_size {
                    let label = Label::new(li as u8);
                    if groups[gi].0.contains(label) {
                        continue;
                    }
                    let mut candidate = groups.clone();
                    candidate[gi].0 = candidate[gi].0.with(label);
                    let line = Line::new(candidate.clone()).expect("non-empty");
                    if line.expand().iter().all(|c| constraint.contains(c)) {
                        groups = candidate;
                        changed = true;
                    }
                }
            }
        }
        let line = Line::new(groups).expect("non-empty");
        for c in line.expand() {
            covered.insert(c);
        }
        lines.push(line);
    }

    debug_assert!(verify_cover(constraint, &lines), "condensation must cover exactly");
    lines
}

/// Whether the union of the lines' expansions equals the constraint.
pub fn verify_cover(constraint: &Constraint, lines: &[Line]) -> bool {
    let mut union = std::collections::HashSet::new();
    for line in lines {
        for cfg in line.expand() {
            if !constraint.contains(&cfg) {
                return false;
            }
            union.insert(cfg);
        }
    }
    union.len() == constraint.len()
}

/// Renders a constraint compactly: condensed lines, one per row.
pub fn render_condensed(constraint: &Constraint, alphabet: &crate::label::Alphabet) -> String {
    condense(constraint).iter().map(|l| l.display(alphabet)).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    #[test]
    fn mis_edge_condenses() {
        let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let lines = condense(mis.edge());
        assert!(verify_cover(mis.edge(), &lines));
        assert!(lines.len() <= 2, "{lines:?}");
    }

    #[test]
    fn node_constraint_condenses() {
        let p = Problem::from_text("[A B]^3\nC C C", "A [A B C]\nB [B C]\nC C").unwrap();
        let lines = condense(p.node());
        assert!(verify_cover(p.node(), &lines));
        // [AB]^3 has 4 configs + CCC: 5 configs condense to ~2 lines.
        assert!(lines.len() <= 3, "{lines:?}");
    }

    #[test]
    fn cover_is_exact_not_superset() {
        let p = Problem::from_text("A A\nA B", "A [A B]").unwrap();
        let lines = condense(p.node());
        // Must not include BB (not in the constraint).
        assert!(verify_cover(p.node(), &lines));
        for line in &lines {
            for cfg in line.expand() {
                assert!(p.node().contains(&cfg));
            }
        }
    }

    #[test]
    fn roundtrip_through_parser() {
        let p = Problem::from_text("M M M M\nP O O O\n[M P] X X X", "M [P O X]\nO [O X]\nP X\nX X")
            .unwrap();
        for constraint in [p.node(), p.edge()] {
            let rendered = render_condensed(constraint, p.alphabet());
            let reparsed = crate::parse::parse_constraint(&rendered, p.alphabet()).unwrap();
            assert_eq!(constraint, &reparsed);
        }
    }

    #[test]
    fn family_node_constraint_recovers_paper_form() {
        // The Π_Δ(a,x) node constraint at Δ=6, a=4, x=1 should condense to
        // exactly 3 lines (M⁵X, A⁴X², PO⁵).
        let node_text = "M^5 X\nA^4 X^2\nP O^5";
        let p = Problem::from_text(node_text, "M M").unwrap();
        let lines = condense(p.node());
        assert_eq!(lines.len(), 3);
    }
}
