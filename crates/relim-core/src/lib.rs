//! # relim-core — a round elimination engine for locally checkable problems
//!
//! This crate is a from-scratch Rust implementation of the *automatic round
//! elimination* framework of Brandt \[PODC'19\] as popularized by Olivetti's
//! `round-eliminator` tool. It is the substrate used to mechanically verify
//! the lower-bound proofs of Balliu, Brandt, Kuhn and Olivetti,
//! *"Improved Distributed Lower Bounds for MIS and Bounded (Out-)Degree
//! Dominating Sets in Trees"* (PODC 2021, arXiv:2106.02440).
//!
//! ## The formalism (paper §2.2–2.3)
//!
//! A locally checkable problem on Δ-regular trees is a triple
//! `(Σ, N, E)`:
//!
//! * an alphabet Σ of [`Label`]s,
//! * a **node constraint** `N`: a set of multisets ([`Config`]) of length Δ,
//! * an **edge constraint** `E`: a set of multisets of length 2.
//!
//! A solution assigns a label to every (node, incident edge) pair such that
//! every node's labels form a configuration in `N` and every edge's two
//! labels form a configuration in `E`.
//!
//! ## What the engine provides
//!
//! * [`engine::Engine`] — **the entry point**: a builder-constructed
//!   session that owns the worker-pool handle, a long-lived sub-multiset
//!   index cache shared across all calls, and per-session statistics
//!   ([`engine::EngineReport`]). Every operator below is reachable as an
//!   `Engine` method; the historical pool-taking free-function wrappers
//!   served their one-release deprecation window and are gone — only the
//!   sequential references (`roundelim::rr_step`, …) remain as free
//!   functions.
//! * [`digest`] — canonical content digests ([`Constraint`] /
//!   [`Problem`]), the keying primitive of the `relim-service`
//!   content-addressed result store.
//! * [`Problem`] — validated problems over interned alphabets, with a text
//!   format ([`parse`]) compatible in spirit with the round-eliminator.
//! * [`roundelim::r_step`] / [`roundelim::rbar_step`] — the `R(·)` and
//!   `R̄(·)` operators of the paper (maximal "for-all" side + "exists" side),
//!   with the right-closedness pruning of Observation 4.
//! * [`diagram`] — label strength orders ("edge diagram" / "node diagram",
//!   paper §2.3, Figures 1, 4, 5) and their Hasse edges.
//! * [`rightclosed`] — enumeration of right-closed label sets.
//! * [`relax`] — Definition 7 (relaxations of configurations) as executable
//!   checks.
//! * [`zeroround`] — 0-round solvability analysis: the identified-ports
//!   gadget underlying Lemmas 12 and 15, the bare-PN "trivial problem"
//!   criterion, and the c-vertex-coloring clique criterion.
//! * [`autolb`] / [`autoub`] — automatic lower/upper-bound search in the
//!   style of the round-eliminator tool, with replayable certificates.
//! * [`biregular`] — the operators at full (δ_B, δ_W)-biregular
//!   generality: rank-r hypergraph problems, dual views, half steps.
//! * [`iso`] — semantic equality and isomorphism search between problems.
//!
//! ## Example
//!
//! ```
//! use relim_core::{Problem, roundelim};
//!
//! // The MIS problem for Δ = 3 (paper §2.2):
//! let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
//! assert_eq!(mis.delta(), 3);
//!
//! // One application of R(·):
//! let step = roundelim::r_step(&mis).unwrap();
//! assert!(step.problem.alphabet().len() >= 3);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autolb;
pub mod autoub;
pub mod biregular;
pub mod condense;
pub mod config;
pub mod constraint;
pub mod diagram;
pub mod digest;
pub mod engine;
pub mod error;
pub mod inline_vec;
pub mod iso;
pub mod iterate;
pub mod label;
pub mod labelset;
pub mod line;
pub mod lineage;
pub mod matching;
pub mod parse;
pub mod problem;
pub mod relax;
pub mod rightclosed;
pub mod roundelim;
mod scratch;
pub mod simplify;
pub mod zeroround;

pub use config::{Config, SetConfig};
pub use constraint::Constraint;
pub use diagram::StrengthOrder;
pub use engine::{Engine, EngineBuilder, EngineReport};
pub use error::RelimError;
pub use label::{Alphabet, Label};
pub use labelset::LabelSet;
pub use line::Line;
pub use lineage::LineageGraph;
pub use problem::Problem;
pub use relim_pool::Pool;
pub use roundelim::Step;
