//! Constraints: explicit sets of configurations of a fixed degree.

use crate::config::Config;
use crate::error::{RelimError, Result};
use crate::label::{Alphabet, Label};
use crate::labelset::LabelSet;
use crate::line::Line;
use std::collections::BTreeSet;
use std::fmt;

/// A node or edge constraint: a non-empty set of [`Config`]s sharing one
/// degree.
///
/// Constraints are stored *explicitly* (every configuration enumerated);
/// condensed [`Line`]s are a construction and display format. This keeps the
/// engine operations simple and exactly faithful to the definitions in the
/// paper (§2.3) at the price of memory — acceptable because the paper's
/// problems use ≤ 8 labels.
///
/// # Example
///
/// ```
/// use relim_core::{Alphabet, Config, Constraint, Line, LabelSet};
///
/// let alpha = Alphabet::new(&["M", "P", "O"]).unwrap();
/// let m = alpha.label("M").unwrap();
/// let p = alpha.label("P").unwrap();
/// let o = alpha.label("O").unwrap();
///
/// // MIS node constraint for Δ=3: { MMM, POO }.
/// let n = Constraint::from_configs(vec![
///     Config::new(vec![m, m, m]),
///     Config::new(vec![p, o, o]),
/// ]).unwrap();
/// assert_eq!(n.degree(), 3);
/// assert_eq!(n.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    degree: u32,
    configs: BTreeSet<Config>,
}

impl Constraint {
    /// Builds a constraint from explicit configurations.
    ///
    /// # Errors
    ///
    /// Returns [`RelimError::EmptyConstraint`] when no configurations are
    /// given, or [`RelimError::WrongDegree`] when degrees disagree.
    pub fn from_configs<I: IntoIterator<Item = Config>>(configs: I) -> Result<Self> {
        let mut set = BTreeSet::new();
        let mut degree: Option<u32> = None;
        for cfg in configs {
            match degree {
                None => degree = Some(cfg.degree()),
                Some(d) if d != cfg.degree() => {
                    return Err(RelimError::WrongDegree { expected: d, found: cfg.degree() })
                }
                _ => {}
            }
            set.insert(cfg);
        }
        let degree = degree.ok_or(RelimError::EmptyConstraint)?;
        Ok(Constraint { degree, configs: set })
    }

    /// Builds a constraint by expanding condensed [`Line`]s.
    ///
    /// # Errors
    ///
    /// Propagates degree mismatches between lines and rejects empty input.
    pub fn from_lines(lines: &[Line]) -> Result<Self> {
        if lines.is_empty() {
            return Err(RelimError::EmptyConstraint);
        }
        let degree = lines[0].degree();
        let mut set = BTreeSet::new();
        for line in lines {
            if line.degree() != degree {
                return Err(RelimError::WrongDegree { expected: degree, found: line.degree() });
            }
            set.extend(line.expand());
        }
        Ok(Constraint { degree, configs: set })
    }

    /// Common degree of all configurations.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the constraint is empty (never true for validated values).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, config: &Config) -> bool {
        self.configs.contains(config)
    }

    /// Iterates over the configurations in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Config> + '_ {
        self.configs.iter()
    }

    /// The set of labels appearing in at least one configuration.
    pub fn support(&self) -> LabelSet {
        self.configs.iter().fold(LabelSet::EMPTY, |acc, c| acc.union(c.support()))
    }

    /// Remaps all labels through `mapping`.
    ///
    /// # Panics
    ///
    /// Panics if a used label has no entry in `mapping`.
    #[must_use]
    pub fn map_labels(&self, mapping: &[Label]) -> Constraint {
        Constraint {
            degree: self.degree,
            configs: self.configs.iter().map(|c| c.map_labels(mapping)).collect(),
        }
    }

    /// Builds the *sub-multiset index*: every sub-multiset (of every size) of
    /// every configuration. Used by the universal-quantification step of
    /// round elimination to prune partial choices, and by checkers to define
    /// the constraint on nodes of degree `< Δ`.
    pub fn sub_multiset_index(&self) -> SubMultisetIndex {
        let mut set = std::collections::HashSet::new();
        for cfg in &self.configs {
            for sub in cfg.sub_multisets() {
                set.insert(sub);
            }
        }
        SubMultisetIndex { degree: self.degree, set }
    }

    /// Renders each configuration on its own line using alphabet names.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        self.configs.iter().map(|c| c.display(alphabet)).collect::<Vec<_>>().join("\n")
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Constraint(degree={}, {} configs)", self.degree, self.configs.len())
    }
}

/// Index of all sub-multisets of a constraint's configurations.
///
/// `contains(c)` answers "can `c` be extended to a full configuration?",
/// which is both the pruning test inside the `R̄`/`R` universal steps and the
/// node-constraint semantics for non-full-degree nodes (e.g. tree leaves).
#[derive(Debug, Clone)]
pub struct SubMultisetIndex {
    degree: u32,
    set: std::collections::HashSet<Config>,
}

impl SubMultisetIndex {
    /// Whether `config` is a sub-multiset of some full configuration.
    pub fn contains(&self, config: &Config) -> bool {
        self.set.contains(config)
    }

    /// Degree of the underlying constraint.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Number of distinct sub-multisets indexed.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u8) -> Label {
        Label::new(i)
    }

    #[test]
    fn from_configs_validates_degree() {
        let err =
            Constraint::from_configs(vec![Config::new(vec![l(0), l(0)]), Config::new(vec![l(0)])])
                .unwrap_err();
        assert!(matches!(err, RelimError::WrongDegree { expected: 2, found: 1 }));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            Constraint::from_configs(Vec::<Config>::new()),
            Err(RelimError::EmptyConstraint)
        ));
    }

    #[test]
    fn from_lines_expands_and_dedups() {
        let ls01 = LabelSet::from_bits(0b011);
        let line1 = Line::new(vec![(ls01, 2)]).unwrap();
        let line2 = Line::new(vec![(LabelSet::from_bits(0b001), 2)]).unwrap();
        let c = Constraint::from_lines(&[line1, line2]).unwrap();
        // Line 1 expands to {AA, AB, BB}; line 2 to {AA} (duplicate).
        assert_eq!(c.len(), 3);
        assert!(c.contains(&Config::new(vec![l(0), l(1)])));
    }

    #[test]
    fn support_union() {
        let c = Constraint::from_configs(vec![
            Config::new(vec![l(0), l(2)]),
            Config::new(vec![l(1), l(1)]),
        ])
        .unwrap();
        assert_eq!(c.support(), LabelSet::from_bits(0b111));
    }

    #[test]
    fn sub_multiset_index_semantics() {
        let c = Constraint::from_configs(vec![Config::new(vec![l(0), l(0), l(1)])]).unwrap();
        let idx = c.sub_multiset_index();
        assert!(idx.contains(&Config::empty()));
        assert!(idx.contains(&Config::new(vec![l(0), l(1)])));
        assert!(idx.contains(&Config::new(vec![l(0), l(0), l(1)])));
        assert!(!idx.contains(&Config::new(vec![l(1), l(1)])));
    }

    #[test]
    fn map_labels_merges() {
        let c = Constraint::from_configs(vec![
            Config::new(vec![l(0), l(1)]),
            Config::new(vec![l(1), l(0)]),
        ])
        .unwrap();
        let mapped = c.map_labels(&[l(0), l(0)]);
        assert_eq!(mapped.len(), 1);
        assert!(mapped.contains(&Config::new(vec![l(0), l(0)])));
    }
}
