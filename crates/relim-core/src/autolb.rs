//! Automatic lower-bound search (the round-eliminator's "autolb" workflow).
//!
//! A lower-bound sequence (paper §1.2) is a chain `Π₀ → Π₁ → …` where each
//! `Π_{i+1}` is 0-round solvable **from** `R̄(R(Π_i))` — here obtained by
//! *merging labels* of `R̄(R(Π_i))`, which is always a relaxation
//! ([`crate::simplify::merge_labels`]) — and every chain problem is *not*
//! 0-round solvable. A chain of `t+1` non-trivial problems certifies that
//! `Π₀` needs at least `t+1` rounds in the port-numbering model on
//! high-girth graphs:
//!
//! ```text
//! T(Π₀) ≥ T(Π₁) + 1 ≥ … ≥ T(Π_t) + t ≥ 1 + t.
//! ```
//!
//! The search below drives this automatically: apply `R̄(R(·))`, merge
//! diagram-adjacent labels until the alphabet fits a budget (rejecting any
//! merge that would make the problem 0-round solvable), detect fixed points
//! (which certify *unbounded* PN lower bounds, hence `Ω(log n)` /
//! `Ω(log log n)` in the deterministic/randomized LOCAL model by the
//! standard lifting), and stop when the chain cannot be extended.
//!
//! Every outcome carries a machine-checkable certificate: [`verify_chain`]
//! replays the round elimination steps and merges from scratch and
//! re-checks non-triviality of every chain element.
//!
//! The search is driven through a [`crate::engine::Engine`] session, which
//! shares one sub-multiset index cache across every step of the merge
//! search:
//!
//! ```
//! use relim_core::engine::Engine;
//! use relim_core::{autolb, Problem};
//!
//! // Sinkless orientation at Δ = 3 is a fixed point of R̄(R(·)): the
//! // search discovers it and certifies an unbounded PN lower bound.
//! let engine = Engine::sequential();
//! let so = Problem::from_text("O I I", "[O I] I").unwrap();
//! let outcome = engine.auto_lower_bound(&so, &autolb::AutoLbOptions::default());
//! assert!(outcome.unbounded());
//! assert!(autolb::verify_chain(&outcome).is_ok());
//! ```

use crate::diagram::StrengthOrder;
use crate::error::{RelimError, Result};
use crate::iso;
use crate::label::Label;
use crate::problem::Problem;
use crate::roundelim::{rr_step, Step};
use crate::simplify;
use crate::zeroround;

/// The 0-round solvability criterion that ends (and certifies) a chain.
///
/// The criterion decides both *when the chain stops* and *what the bound
/// means*: the stricter [`Triviality::GadgetEdgeColoring`] requirement
/// (problems must stay unsolvable even on the identified-ports gadget)
/// yields bounds that hold **even when a Δ-edge coloring is given as
/// input** — the paper's setting (Lemmas 12/15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Triviality {
    /// Bare PN model: trivial iff some node configuration has *all pairs*
    /// edge-compatible ([`zeroround::solvable_pn_universal`]). Chains may
    /// be longer, but certify only bare-PN lower bounds.
    Universal,
    /// Identified-ports gadget: trivial iff some node configuration has
    /// all labels *self*-compatible
    /// ([`zeroround::solvable_deterministically`]). Chains certify lower
    /// bounds that survive a Δ-edge-coloring input, as in the paper.
    #[default]
    GadgetEdgeColoring,
}

impl Triviality {
    /// Whether `p` is 0-round solvable under this criterion.
    pub fn is_trivial(self, p: &Problem) -> bool {
        match self {
            Triviality::Universal => zeroround::solvable_pn_universal(p),
            Triviality::GadgetEdgeColoring => zeroround::solvable_deterministically(p),
        }
    }
}

/// Options for [`crate::engine::Engine::auto_lower_bound`].
#[derive(Debug, Clone)]
pub struct AutoLbOptions {
    /// Maximum number of `R̄(R(·))` steps to take.
    pub max_steps: usize,
    /// After each step, merge labels until the alphabet has at most this
    /// many labels.
    pub label_budget: usize,
    /// Criterion certifying non-0-round-solvability (see [`Triviality`]).
    pub triviality: Triviality,
}

impl Default for AutoLbOptions {
    fn default() -> Self {
        AutoLbOptions { max_steps: 8, label_budget: 6, triviality: Triviality::default() }
    }
}

/// One link of a certified chain: `R̄(R(prev))` plus the merges that
/// produced the next chain element.
#[derive(Debug, Clone)]
pub struct ChainStep {
    /// `R̄(R(prev))` with unused labels dropped, before simplification.
    pub raw: Problem,
    /// Merges applied in order; each pair is `(from, to)` by label *name*
    /// in the alphabet current at the time of the merge.
    pub merges: Vec<(String, String)>,
    /// The simplified problem — the next chain element.
    pub problem: Problem,
}

/// Why [`crate::engine::Engine::auto_lower_bound`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutoLbStop {
    /// The input problem is already 0-round solvable: no bound.
    InitialTrivial,
    /// The latest derived problem is 0-round solvable even before merging;
    /// the chain cannot be extended past it.
    BecameTrivial,
    /// Every merge bringing the alphabet within budget makes the problem
    /// 0-round solvable; the chain stops at the previous element.
    NoViableMerge,
    /// The step budget ran out with the chain still extending.
    MaxSteps,
    /// The latest chain element is isomorphic to its predecessor: the
    /// chain extends forever, certifying an **unbounded** PN lower bound.
    FixedPoint,
    /// The engine failed (e.g. more labels than the engine supports before
    /// any merge could apply).
    Engine(String),
}

/// The result of an automatic lower-bound search.
#[derive(Debug, Clone)]
pub struct AutoLbOutcome {
    /// Chain element 0 (the input, unused labels dropped).
    pub initial: Problem,
    /// Chain links; link `i` turns element `i` into element `i+1`.
    pub steps: Vec<ChainStep>,
    /// Why the search stopped.
    pub stopped: AutoLbStop,
    /// The criterion that was enforced on every chain element.
    pub triviality: Triviality,
    /// Rounds certified: the number of consecutive non-trivial chain
    /// elements starting from the input. When `stopped` is
    /// [`AutoLbStop::FixedPoint`] the true bound is unbounded and this
    /// field only reflects the explicit prefix.
    pub certified_rounds: usize,
}

impl AutoLbOutcome {
    /// The chain elements `Π₀, Π₁, …` (input plus one per step).
    pub fn chain(&self) -> impl Iterator<Item = &Problem> {
        std::iter::once(&self.initial).chain(self.steps.iter().map(|s| &s.problem))
    }

    /// Whether the search proved an unbounded PN lower bound (fixed point).
    pub fn unbounded(&self) -> bool {
        self.stopped == AutoLbStop::FixedPoint
    }
}

/// The search loop behind [`crate::engine::Engine::auto_lower_bound`],
/// parameterized over how one `Π ↦ R̄(R(Π))` application is computed (the
/// engine passes its cache-serving session step).
pub(crate) fn auto_lower_bound_with_step(
    p: &Problem,
    opts: &AutoLbOptions,
    mut step_fn: impl FnMut(&Problem) -> Result<(Step, Step)>,
) -> AutoLbOutcome {
    let (initial, _) = p.drop_unused_labels();
    let done = |steps: Vec<ChainStep>, stopped: AutoLbStop, certified: usize| AutoLbOutcome {
        initial: initial.clone(),
        steps,
        stopped,
        triviality: opts.triviality,
        certified_rounds: certified,
    };

    if opts.triviality.is_trivial(&initial) {
        return done(Vec::new(), AutoLbStop::InitialTrivial, 0);
    }

    let mut chain_len = 1usize; // non-trivial elements so far
    let mut steps: Vec<ChainStep> = Vec::new();
    let mut prev = initial.clone();

    for _ in 0..opts.max_steps {
        let rbar = match step_fn(&prev) {
            Ok((_, rbar)) => rbar,
            Err(e) => return done(steps, AutoLbStop::Engine(e.to_string()), chain_len),
        };
        let (raw, _) = rbar.problem.drop_unused_labels();

        if opts.triviality.is_trivial(&raw) {
            // Merging only relaxes further; the chain ends here.
            steps.push(ChainStep { raw: raw.clone(), merges: Vec::new(), problem: raw });
            return done(steps, AutoLbStop::BecameTrivial, chain_len);
        }

        let mut merges = Vec::new();
        let mut cur = raw.clone();
        while cur.alphabet().len() > opts.label_budget {
            match best_merge(&cur, opts.triviality) {
                Some((from, to, merged)) => {
                    merges.push((from, to));
                    cur = merged;
                }
                None => {
                    return done(steps, AutoLbStop::NoViableMerge, chain_len);
                }
            }
        }

        let fixed = iso::isomorphic(&cur, &prev);
        steps.push(ChainStep { raw, merges, problem: cur.clone() });
        chain_len += 1;
        if fixed {
            return done(steps, AutoLbStop::FixedPoint, chain_len);
        }
        prev = cur;
    }
    done(steps, AutoLbStop::MaxSteps, chain_len)
}

/// Picks the best label merge of `p` that keeps the problem non-trivial.
///
/// Candidates are pairs adjacent in the edge diagram (the round-eliminator
/// heuristic: identifying comparable labels loses the least structure),
/// falling back to all pairs when no adjacent merge survives. Among
/// survivors the merge minimizing the configuration count wins, with
/// label-equivalent pairs (identical strength) preferred outright.
fn best_merge(p: &Problem, triviality: Triviality) -> Option<(String, String, Problem)> {
    let order = StrengthOrder::of_constraint(p.edge(), p.alphabet().len());
    let adjacent: Vec<(Label, Label)> = order.hasse_edges();
    let all_pairs: Vec<(Label, Label)> = {
        let n = p.alphabet().len();
        (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (Label::new(i as u8), Label::new(j as u8))))
            .collect()
    };

    for candidates in [&adjacent, &all_pairs] {
        let mut best: Option<(Label, Label, Problem, (usize, usize))> = None;
        for &(a, b) in candidates.iter() {
            let Ok(merged) = simplify::merge_labels(p, a, b) else { continue };
            if triviality.is_trivial(&merged) {
                continue;
            }
            // Equivalent labels merge losslessly: take such a merge at once.
            let score = if order.equivalent(a, b) {
                (0, 0)
            } else {
                (merged.node().len() + merged.edge().len(), merged.alphabet().len())
            };
            if best.as_ref().is_none_or(|(_, _, _, s)| score < *s) {
                best = Some((a, b, merged, score));
            }
        }
        if let Some((a, b, merged, _)) = best {
            let from = p.alphabet().name(a).to_string();
            let to = p.alphabet().name(b).to_string();
            return Some((from, to, merged));
        }
    }
    None
}

/// Replays and verifies an [`AutoLbOutcome`] from scratch.
///
/// Re-runs every `R̄(R(·))` step, re-applies the recorded merges by name,
/// checks the results match the recorded problems, and re-checks the
/// non-triviality of every chain element. Returns the certified number of
/// rounds.
///
/// # Errors
///
/// Returns [`RelimError::InvalidParameter`] describing the first mismatch,
/// or any engine error hit during the replay.
pub fn verify_chain(outcome: &AutoLbOutcome) -> Result<usize> {
    let mismatch = |message: String| RelimError::InvalidParameter { message };
    if outcome.stopped == AutoLbStop::InitialTrivial {
        if !outcome.triviality.is_trivial(&outcome.initial) {
            return Err(mismatch("outcome says InitialTrivial but the input is not".into()));
        }
        return Ok(0);
    }
    if outcome.triviality.is_trivial(&outcome.initial) {
        return Err(mismatch("chain element 0 is 0-round solvable".into()));
    }

    let mut certified = 1usize;
    let mut prev = outcome.initial.clone();
    for (i, step) in outcome.steps.iter().enumerate() {
        let (_, rbar) = rr_step(&prev)?;
        let (raw, _) = rbar.problem.drop_unused_labels();
        if !iso::isomorphic(&raw, &step.raw) {
            return Err(mismatch(format!("step {i}: recorded raw problem does not match replay")));
        }
        let mut cur = raw;
        for (from, to) in &step.merges {
            let f = cur.alphabet().label(from)?;
            let t = cur.alphabet().label(to)?;
            cur = simplify::merge_labels(&cur, f, t)?;
        }
        if !iso::isomorphic(&cur, &step.problem) {
            return Err(mismatch(format!(
                "step {i}: merges do not reproduce the recorded problem"
            )));
        }
        let trivial = outcome.triviality.is_trivial(&cur);
        let last = i + 1 == outcome.steps.len();
        match (trivial, last, &outcome.stopped) {
            (true, true, AutoLbStop::BecameTrivial) => {} // allowed terminal element
            (true, _, _) => {
                return Err(mismatch(format!("step {i}: chain element is 0-round solvable")))
            }
            (false, _, _) => certified += 1,
        }
        prev = cur;
    }
    if certified != outcome.certified_rounds {
        return Err(mismatch(format!(
            "certified {certified} rounds, outcome claims {}",
            outcome.certified_rounds
        )));
    }
    Ok(certified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn mis3() -> Problem {
        Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap()
    }

    fn auto_lower_bound(p: &Problem, opts: &AutoLbOptions) -> AutoLbOutcome {
        Engine::sequential().auto_lower_bound(p, opts)
    }

    #[test]
    fn sinkless_orientation_is_unbounded() {
        let so = Problem::from_text("O I I", "[O I] I").unwrap();
        let outcome = auto_lower_bound(&so, &AutoLbOptions::default());
        assert_eq!(outcome.stopped, AutoLbStop::FixedPoint);
        assert!(outcome.unbounded());
        // One step suffices to witness the fixed point.
        assert_eq!(outcome.steps.len(), 1);
        assert!(outcome.steps[0].merges.is_empty());
        assert_eq!(verify_chain(&outcome).unwrap(), outcome.certified_rounds);
    }

    #[test]
    fn trivial_input_reports_zero() {
        let p = Problem::from_text("A A A", "A A").unwrap();
        let outcome = auto_lower_bound(&p, &AutoLbOptions::default());
        assert_eq!(outcome.stopped, AutoLbStop::InitialTrivial);
        assert_eq!(outcome.certified_rounds, 0);
        assert_eq!(verify_chain(&outcome).unwrap(), 0);
    }

    #[test]
    fn mis_chain_extends_and_verifies() {
        let opts = AutoLbOptions { max_steps: 3, label_budget: 5, ..Default::default() };
        let outcome = auto_lower_bound(&mis3(), &opts);
        // MIS is not 0-round solvable, so at least the input is certified.
        assert!(outcome.certified_rounds >= 1);
        // Whatever happened, the certificate must replay.
        assert_eq!(verify_chain(&outcome).unwrap(), outcome.certified_rounds);
        // All recorded chain elements respect the criterion except a
        // trailing trivial element in the BecameTrivial case.
        let n = outcome.steps.len();
        for (i, step) in outcome.steps.iter().enumerate() {
            let trivial = outcome.triviality.is_trivial(&step.problem);
            if i + 1 < n || outcome.stopped != AutoLbStop::BecameTrivial {
                assert!(!trivial, "chain element {} unexpectedly trivial", i + 1);
            }
        }
    }

    #[test]
    fn universal_criterion_gives_no_shorter_chain() {
        // Universal triviality is harder to reach than gadget triviality,
        // so the universal chain certifies at least as many rounds.
        let opts_g = AutoLbOptions {
            max_steps: 2,
            label_budget: 5,
            triviality: Triviality::GadgetEdgeColoring,
        };
        let opts_u = AutoLbOptions { triviality: Triviality::Universal, ..opts_g.clone() };
        let g = auto_lower_bound(&mis3(), &opts_g);
        let u = auto_lower_bound(&mis3(), &opts_u);
        assert!(u.certified_rounds >= g.certified_rounds);
    }

    #[test]
    fn verify_rejects_tampered_chain() {
        let so = Problem::from_text("O I I", "[O I] I").unwrap();
        let mut outcome = auto_lower_bound(&so, &AutoLbOptions::default());
        outcome.certified_rounds += 1;
        assert!(verify_chain(&outcome).is_err());
    }

    #[test]
    fn verify_rejects_swapped_problem() {
        let so = Problem::from_text("O I I", "[O I] I").unwrap();
        let mut outcome = auto_lower_bound(&so, &AutoLbOptions::default());
        // Replace the recorded step problem with something else entirely.
        outcome.steps[0].problem = mis3();
        assert!(verify_chain(&outcome).is_err());
    }

    #[test]
    fn perfect_matching_trivial_under_gadget_only() {
        // N = {MO}, E = {MM, OO}: 0-round solvable given a 2-edge coloring,
        // so the gadget-criterion search reports InitialTrivial while the
        // universal-criterion search can still build a chain.
        let pm = Problem::from_text("M O", "M M\nO O").unwrap();
        let gadget = auto_lower_bound(&pm, &AutoLbOptions::default());
        assert_eq!(gadget.stopped, AutoLbStop::InitialTrivial);
        let universal = auto_lower_bound(
            &pm,
            &AutoLbOptions { triviality: Triviality::Universal, ..Default::default() },
        );
        assert!(universal.certified_rounds >= 1);
        assert_eq!(verify_chain(&universal).unwrap(), universal.certified_rounds);
    }
}
