//! Label strength orders and diagrams (paper §2.3, Figures 1, 4, 5).
//!
//! Label `A` is *at least as strong as* label `B` **according to a
//! constraint** `C` if for every configuration in `C` containing `B`,
//! replacing one occurrence of `B` by `A` yields a configuration that is also
//! in `C`. Computed against the edge constraint this yields the *edge
//! diagram*; against the node constraint, the *node diagram*.

use crate::constraint::Constraint;
use crate::label::{Alphabet, Label};
use crate::labelset::LabelSet;

/// The full strength preorder of labels with respect to one constraint.
///
/// # Example
///
/// ```
/// use relim_core::{Problem, diagram::StrengthOrder};
///
/// // MIS (Δ=3): in the edge diagram, O is stronger than P (Figure 1).
/// let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
/// let order = StrengthOrder::of_constraint(mis.edge(), mis.alphabet().len());
/// let p = mis.alphabet().label("P").unwrap();
/// let o = mis.alphabet().label("O").unwrap();
/// let m = mis.alphabet().label("M").unwrap();
/// assert!(order.is_at_least_as_strong(o, p));
/// assert!(!order.is_at_least_as_strong(p, o));
/// assert!(!order.is_at_least_as_strong(m, o) && !order.is_at_least_as_strong(o, m));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrengthOrder {
    n: usize,
    /// `geq[b]` = set of labels at least as strong as `b` (always contains
    /// `b` itself).
    geq: Vec<LabelSet>,
}

impl StrengthOrder {
    /// Computes the strength preorder of all `alphabet_len` labels with
    /// respect to `constraint`.
    ///
    /// Labels that do not occur in the constraint are at least as strong as
    /// every label (replacing in zero configurations is vacuous) — callers
    /// normally drop unused labels first.
    pub fn of_constraint(constraint: &Constraint, alphabet_len: usize) -> Self {
        let n = alphabet_len;
        let mut geq = vec![LabelSet::EMPTY; n];
        for (b_idx, slot) in geq.iter_mut().enumerate() {
            let b = Label::new(b_idx as u8);
            for a_idx in 0..n {
                let a = Label::new(a_idx as u8);
                if at_least_as_strong(constraint, a, b) {
                    *slot = slot.with(a);
                }
            }
        }
        StrengthOrder { n, geq }
    }

    /// Number of labels covered by the order.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the order covers no labels.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether `a` is at least as strong as `b` (reflexive).
    pub fn is_at_least_as_strong(&self, a: Label, b: Label) -> bool {
        self.geq[b.index()].contains(a)
    }

    /// Whether `a` is strictly stronger than `b`.
    pub fn is_stronger(&self, a: Label, b: Label) -> bool {
        self.is_at_least_as_strong(a, b) && !self.is_at_least_as_strong(b, a)
    }

    /// Whether `a` and `b` are equivalent (each at least as strong as the
    /// other).
    pub fn equivalent(&self, a: Label, b: Label) -> bool {
        self.is_at_least_as_strong(a, b) && self.is_at_least_as_strong(b, a)
    }

    /// The set of labels at least as strong as `b`, including `b`.
    pub fn upward_of(&self, b: Label) -> LabelSet {
        self.geq[b.index()]
    }

    /// Upward closure of a set under "at least as strong".
    pub fn upward_closure(&self, set: LabelSet) -> LabelSet {
        set.iter().fold(LabelSet::EMPTY, |acc, l| acc.union(self.geq[l.index()]))
    }

    /// Whether `set` is right-closed: closed under taking at-least-as-strong
    /// labels (paper §2.3 "Right-closed Sets", via the preorder).
    pub fn is_right_closed(&self, set: LabelSet) -> bool {
        self.upward_closure(set) == set
    }

    /// The Hasse edges of the diagram: `(a, b)` meaning an arrow `a → b`
    /// where `b` is strictly stronger than `a` and no label lies strictly
    /// between them.
    pub fn hasse_edges(&self) -> Vec<(Label, Label)> {
        let mut edges = Vec::new();
        for a_idx in 0..self.n {
            let a = Label::new(a_idx as u8);
            for b_idx in 0..self.n {
                let b = Label::new(b_idx as u8);
                if !self.is_stronger(b, a) {
                    continue;
                }
                let intermediate = (0..self.n).any(|z_idx| {
                    let z = Label::new(z_idx as u8);
                    self.is_stronger(z, a) && self.is_stronger(b, z)
                });
                if !intermediate {
                    edges.push((a, b));
                }
            }
        }
        edges
    }

    /// Renders the Hasse diagram in Graphviz DOT syntax.
    pub fn to_dot(&self, alphabet: &Alphabet, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{title}\" {{\n  rankdir=LR;\n"));
        for l in alphabet.labels() {
            out.push_str(&format!("  \"{}\";\n", alphabet.name(l)));
        }
        for (a, b) in self.hasse_edges() {
            out.push_str(&format!("  \"{}\" -> \"{}\";\n", alphabet.name(a), alphabet.name(b)));
        }
        out.push_str("}\n");
        out
    }
}

/// The raw relation check: `a` at least as strong as `b` w.r.t. `constraint`.
fn at_least_as_strong(constraint: &Constraint, a: Label, b: Label) -> bool {
    if a == b {
        return true;
    }
    for cfg in constraint.iter() {
        if cfg.contains(b) {
            let replaced = cfg.replace_one(b, a).expect("b occurs in cfg");
            if !constraint.contains(&replaced) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    fn mis3() -> Problem {
        Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap()
    }

    #[test]
    fn figure1_mis_edge_diagram() {
        // Paper Figure 1: the only strength relation is P -> O (O stronger).
        let p = mis3();
        let order = StrengthOrder::of_constraint(p.edge(), 3);
        let a = p.alphabet();
        let (m, pp, o) = (a.label("M").unwrap(), a.label("P").unwrap(), a.label("O").unwrap());
        assert!(order.is_stronger(o, pp));
        assert!(!order.is_at_least_as_strong(m, pp));
        assert!(!order.is_at_least_as_strong(pp, m));
        assert!(!order.is_at_least_as_strong(m, o));
        assert_eq!(order.hasse_edges(), vec![(pp, o)]);
    }

    #[test]
    fn upward_closure_and_right_closed() {
        let p = mis3();
        let order = StrengthOrder::of_constraint(p.edge(), 3);
        let a = p.alphabet();
        let (m, pp, o) = (a.label("M").unwrap(), a.label("P").unwrap(), a.label("O").unwrap());
        let just_p = LabelSet::singleton(pp);
        assert!(!order.is_right_closed(just_p));
        assert_eq!(order.upward_closure(just_p), just_p.with(o));
        assert!(order.is_right_closed(LabelSet::singleton(o)));
        assert!(order.is_right_closed(LabelSet::singleton(m)));
        assert!(order.is_right_closed(LabelSet::singleton(m).with(o)));
    }

    #[test]
    fn reflexive() {
        let p = mis3();
        let order = StrengthOrder::of_constraint(p.node(), 3);
        for l in p.alphabet().labels() {
            assert!(order.is_at_least_as_strong(l, l));
        }
    }

    #[test]
    fn dot_output_contains_edge() {
        let p = mis3();
        let order = StrengthOrder::of_constraint(p.edge(), 3);
        let dot = order.to_dot(p.alphabet(), "mis-edge");
        assert!(dot.contains("\"P\" -> \"O\""));
    }
}
