//! Zero-round solvability in the port numbering model (paper Lemmas 12, 15).
//!
//! The paper's gadget: a graph family whose port numbering assigns, to every
//! edge of color `i`, port `i` **at both endpoints** (possible given a
//! Δ-edge coloring). Every node then has an identical 0-round view, so:
//!
//! * a **deterministic** 0-round algorithm is a single function
//!   `ports → labels` used by all nodes, and every edge receives the *same*
//!   label on both sides — it succeeds iff some node configuration consists
//!   solely of labels compatible with themselves;
//! * a **randomized** 0-round algorithm is a distribution over such
//!   functions; if every node configuration contains a label that is not
//!   self-compatible, a pigeonhole argument bounds the failure probability
//!   from below by `1/(m·Δ)²` where `m = |N|` (the paper states `1/(3Δ)² ≥
//!   1/Δ⁸` for its 3-configuration family).

use crate::config::Config;
use crate::label::Label;
use crate::problem::Problem;

/// Outcome of the 0-round analysis on the identified-ports gadget.
#[derive(Debug, Clone)]
pub struct ZeroRoundReport {
    /// Whether a deterministic 0-round algorithm exists on the gadget.
    pub deterministically_solvable: bool,
    /// A node configuration witnessing solvability (all labels
    /// self-compatible), if one exists.
    pub witness: Option<Config>,
    /// For each node configuration, a label in it that is **not**
    /// self-compatible (`None` exactly for witnesses).
    pub bad_labels: Vec<(Config, Option<Label>)>,
    /// Lower bound on the failure probability of any randomized 0-round
    /// algorithm on the gadget (0.0 when deterministically solvable).
    pub randomized_failure_lower_bound: f64,
}

/// Analyzes 0-round solvability of `p` on the identified-ports gadget.
///
/// # Example
///
/// ```
/// use relim_core::{Problem, zeroround};
///
/// // MIS: every configuration contains a self-incompatible label
/// // (M in M³, P in PO²) — not 0-round solvable (cf. Lemma 12).
/// let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
/// let report = zeroround::analyze(&mis);
/// assert!(!report.deterministically_solvable);
/// assert!(report.randomized_failure_lower_bound > 0.0);
/// ```
pub fn analyze(p: &Problem) -> ZeroRoundReport {
    let self_compat: Vec<bool> = (0..p.alphabet().len())
        .map(|i| {
            let l = Label::new(i as u8);
            p.edge().contains(&Config::new(vec![l, l]))
        })
        .collect();

    let mut witness = None;
    let mut bad_labels = Vec::new();
    for cfg in p.node().iter() {
        let bad = cfg.iter().find(|l| !self_compat[l.index()]);
        if bad.is_none() && witness.is_none() {
            witness = Some(cfg.clone());
        }
        bad_labels.push((cfg.clone(), bad));
    }

    let deterministically_solvable = witness.is_some();
    let randomized_failure_lower_bound = if deterministically_solvable {
        0.0
    } else {
        // Paper Lemma 15, generalized from 3 configurations to m: some
        // configuration is used with probability ≥ 1/m; its bad label sits on
        // some port with probability ≥ 1/(mΔ); both endpoints (independent
        // randomness) put it there with probability ≥ (1/(mΔ))².
        let m = p.node().len() as f64;
        let delta = p.delta() as f64;
        (1.0 / (m * delta)).powi(2)
    };

    ZeroRoundReport {
        deterministically_solvable,
        witness,
        bad_labels,
        randomized_failure_lower_bound,
    }
}

/// A witness that `p` is 0-round solvable in the **bare** port-numbering
/// model (round-eliminator terminology: `p` is a *trivial* problem).
///
/// A deterministic 0-round PN algorithm on Δ-regular graphs is a single
/// port → label map `b₁ … b_Δ` used identically by every node (nodes have
/// no information distinguishing them). The adversary pairs arbitrary ports
/// across each edge, so the map is correct on **all** instances iff
/// `b₁ … b_Δ ∈ N` and *every* pair `{bᵢ, bⱼ}` (including `i = j`: two
/// neighbors may use the same port number for their shared edge) is in `E`.
///
/// Contrast with the *gadget* criterion of [`analyze`]/
/// [`solvable_deterministically`], which only needs the **diagonal** pairs
/// `{bᵢ, bᵢ}`: there, the identified-ports input guarantees that an edge
/// always joins equal port numbers. Consequently
/// `universal_witness(p).is_some()` implies
/// `solvable_deterministically(p)`, but not conversely — e.g. perfect
/// matching on 2-edge-colored cycles (`N = {MO}`, `E = {MM, OO}`) is
/// 0-round solvable *given the coloring* yet not trivially.
///
/// # Example
///
/// ```
/// use relim_core::{Problem, zeroround};
///
/// // "Output anything" is trivial; MIS is not.
/// let anything = Problem::from_text("A A A", "A A").unwrap();
/// assert!(zeroround::universal_witness(&anything).is_some());
/// let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
/// assert!(zeroround::universal_witness(&mis).is_none());
/// ```
pub fn universal_witness(p: &Problem) -> Option<Config> {
    let compat = p.edge_compat();
    p.node()
        .iter()
        .find(|cfg| cfg.iter().all(|x| cfg.iter().all(|y| compat[x.index()].contains(y))))
        .cloned()
}

/// Whether `p` is 0-round solvable in the bare port-numbering model — see
/// [`universal_witness`] for the criterion and how it differs from the
/// identified-ports gadget.
pub fn solvable_pn_universal(p: &Problem) -> bool {
    universal_witness(p).is_some()
}

/// A witness that `p` is 0-round solvable **given a proper c-vertex
/// coloring** as input, on Δ-regular graphs.
///
/// A 0-round algorithm with a coloring input is a map `color → node
/// configuration` (anonymous nodes of the same color are
/// indistinguishable, and within a configuration the algorithm may assign
/// labels to ports freely, which the adversarial port pairing defeats).
/// Correctness on *every* properly c-colored instance requires, for every
/// pair of **distinct** colors `γ ≠ δ` (equal colors are never adjacent),
/// that every label of `C_γ` is edge-compatible with every label of `C_δ`.
///
/// Reusing one configuration for two colors forces its label set to be
/// self-cross-compatible — which is exactly [`universal_witness`] — so for
/// problems that are not already trivial the criterion is a **clique of
/// size `c`** in the graph whose vertices are node configurations and
/// whose edges join cross-compatible pairs. Fewer colors are a *stronger*
/// promise: solvability is monotone decreasing in `c`.
///
/// Returns `c` configurations (one per color) if they exist.
///
/// # Panics
///
/// Panics if `c < 2` — a proper 1-coloring of a graph with edges does not
/// exist, so the question is vacuous.
///
/// # Example
///
/// ```
/// use relim_core::{Problem, zeroround};
///
/// // Proper 2-coloring: N = {AAA, BBB}, E = {AB}. Trivially 0-round
/// // solvable given a 2-coloring (echo the input), but not given a
/// // 3-coloring (two of the three classes would collide).
/// let two_col = Problem::from_text("A A A\nB B B", "A B").unwrap();
/// assert!(zeroround::coloring_witness(&two_col, 2).is_some());
/// assert!(zeroround::coloring_witness(&two_col, 3).is_none());
/// ```
pub fn coloring_witness(p: &Problem, c: usize) -> Option<Vec<Config>> {
    assert!(c >= 2, "a proper coloring needs at least 2 colors");
    if let Some(w) = universal_witness(p) {
        // One self-cross-compatible configuration serves every color.
        return Some(vec![w; c]);
    }
    let configs: Vec<&Config> = p.node().iter().collect();
    let compat = p.edge_compat();
    // supports[i] = set of labels used by configs[i].
    let supports: Vec<crate::labelset::LabelSet> = configs
        .iter()
        .map(|cfg| cfg.iter().fold(crate::labelset::LabelSet::EMPTY, |acc, l| acc.with(l)))
        .collect();
    let cross_ok = |i: usize, j: usize| {
        supports[i].iter().all(|x| supports[j].is_subset_of(compat[x.index()]))
    };
    // Depth-first clique search; configuration counts here are small
    // enough (≤ a few hundred) that this is immediate for the small `c`
    // values upper-bound chains use.
    fn extend(
        chosen: &mut Vec<usize>,
        start: usize,
        c: usize,
        n: usize,
        cross_ok: &dyn Fn(usize, usize) -> bool,
    ) -> bool {
        if chosen.len() == c {
            return true;
        }
        for i in start..n {
            if chosen.iter().all(|&j| cross_ok(j, i)) {
                chosen.push(i);
                if extend(chosen, i + 1, c, n, cross_ok) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
    let mut chosen = Vec::new();
    if extend(&mut chosen, 0, c, configs.len(), &cross_ok) {
        Some(chosen.into_iter().map(|i| configs[i].clone()).collect())
    } else {
        None
    }
}

/// The largest `c ≤ cap` for which [`coloring_witness`] succeeds, or
/// `None` if even `c = 2` fails.
///
/// Since solvability is monotone decreasing in `c`, this is the weakest
/// coloring promise under which `p` is 0-round solvable.
pub fn max_coloring_solvable(p: &Problem, cap: usize) -> Option<usize> {
    (2..=cap).rev().find(|&c| coloring_witness(p, c).is_some())
}

/// Whether `p` is 0-round solvable *deterministically* on the gadget.
///
/// By the argument in [`universal_witness`], this is **exactly** the class
/// of problems solvable in 0 rounds when a Δ-edge coloring is provided as
/// input on Δ-regular graphs: a proper Δ-edge coloring of a Δ-regular
/// graph shows every color at every node, so an anonymous color → label map
/// realizes a fixed node configuration and puts equal labels on the two
/// sides of every edge.
///
/// Equivalent to `analyze(p).deterministically_solvable`, without building
/// the full report.
pub fn solvable_deterministically(p: &Problem) -> bool {
    let self_compat: Vec<bool> = (0..p.alphabet().len())
        .map(|i| {
            let l = Label::new(i as u8);
            p.edge().contains(&Config::new(vec![l, l]))
        })
        .collect();
    p.node().iter().any(|cfg| cfg.iter().all(|l| self_compat[l.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mis_not_zero_round_solvable() {
        let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
        let report = analyze(&mis);
        assert!(!report.deterministically_solvable);
        assert!(report.witness.is_none());
        for (cfg, bad) in &report.bad_labels {
            let bad = bad.expect("every configuration has a bad label");
            assert!(cfg.contains(bad));
        }
        // m = 2 configs, Δ = 3: bound (1/6)².
        let expected = (1.0f64 / 6.0).powi(2);
        assert!((report.randomized_failure_lower_bound - expected).abs() < 1e-12);
    }

    #[test]
    fn all_self_compatible_is_solvable() {
        // Trivial problem: single label compatible with itself.
        let p = Problem::from_text("A A A", "A A").unwrap();
        let report = analyze(&p);
        assert!(report.deterministically_solvable);
        assert_eq!(report.randomized_failure_lower_bound, 0.0);
        assert!(report.witness.is_some());
        assert!(solvable_deterministically(&p));
    }

    #[test]
    fn mixed_configurations() {
        // One good configuration (OO) and one bad (PP-ish): solvable.
        let p = Problem::from_text("O O\nP P", "O O\nP O").unwrap();
        assert!(solvable_deterministically(&p));
        let report = analyze(&p);
        assert_eq!(report.witness.as_ref().map(|c| c.degree()), Some(2));
    }

    #[test]
    fn universal_requires_all_pairs() {
        // Perfect matching on 2-regular graphs: N = {MO}, E = {MM, OO}.
        // Both labels are self-compatible (gadget-solvable, i.e. 0 rounds
        // given a 2-edge coloring) but the cross pair MO is not in E, so the
        // problem is not trivial in the bare PN model.
        let pm = Problem::from_text("M O", "M M\nO O").unwrap();
        assert!(solvable_deterministically(&pm));
        assert!(universal_witness(&pm).is_none());
        assert!(!solvable_pn_universal(&pm));
    }

    #[test]
    fn universal_witness_on_trivial_problem() {
        let p = Problem::from_text("A A A\nB B B", "A A\nA B").unwrap();
        // AAA works (AA in E); BBB does not (BB not in E).
        let w = universal_witness(&p).expect("trivial");
        let a = p.alphabet().label("A").unwrap();
        assert!(w.iter().all(|l| l == a));
    }

    #[test]
    fn universal_implies_gadget() {
        // Universal solvability is strictly stronger than gadget
        // solvability; spot-check the implication on a few problems.
        for (node, edge) in [
            ("A A A", "A A"),
            ("M M M\nP O O", "M [P O]\nO O"),
            ("M O", "M M\nO O"),
            ("A B\nB B", "A B\nB B"),
        ] {
            let p = Problem::from_text(node, edge).unwrap();
            if solvable_pn_universal(&p) {
                assert!(solvable_deterministically(&p), "{node} / {edge}");
            }
        }
    }

    #[test]
    fn sinkless_orientation_not_universal() {
        // Sinkless orientation (Δ = 3): O I I with E = {[O I] I}; the
        // configuration needs OO... OO is not in E (an edge cannot be
        // outgoing at both endpoints), and O appears in the only node
        // configuration, so the problem is neither gadget- nor universally
        // solvable in 0 rounds.
        let so = Problem::from_text("O I I", "[O I] I").unwrap();
        assert!(universal_witness(&so).is_none());
        assert!(!solvable_deterministically(&so));
    }
}
