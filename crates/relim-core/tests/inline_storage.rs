//! Differential pinning of the inline-storage `Config`/`SetConfig`
//! against the historical `Vec`-backed semantics.
//!
//! `Config` and `SetConfig` moved from `Vec` storage to
//! [`relim_core::inline_vec::InlineVec`] (inline up to
//! [`relim_core::config::INLINE_DEGREE`] elements). That refactor must be
//! *unobservable*: the model here is a plain sorted `Vec` — exactly the
//! old representation — and every comparison surface (sort order, `Ord`,
//! `Eq`, `Hash`, rendering) is checked to agree with it, across the spill
//! boundary. Canonical problem digests are pinned as golden values: if a
//! storage change moved a single served byte, these digests move.

use proptest::prelude::*;
use relim_core::config::INLINE_DEGREE;
use relim_core::inline_vec::InlineVec;
use relim_core::roundelim::{r_step, rbar_step};
use relim_core::{Config, Label, LabelSet, Problem, SetConfig};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn hash_of<T: Hash>(x: &T) -> u64 {
    let mut h = DefaultHasher::new();
    x.hash(&mut h);
    h.finish()
}

/// The old representation: what `Config::new` used to store.
fn vec_model(raw: &[u8]) -> Vec<Label> {
    let mut v: Vec<Label> = raw.iter().map(|&i| Label::new(i)).collect();
    v.sort_unstable();
    v
}

/// Splitmix64 step — the vendored proptest shim has no `collection::vec`,
/// so variable-length inputs are derived from a (length, seed) pair.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn raw_labels() -> impl Strategy<Value = Vec<u8>> {
    // Degrees straddling the spill boundary (INLINE_DEGREE = 8): 0..=12.
    ((0usize..=12), (0u64..u64::MAX))
        .prop_map(|(len, mut seed)| (0..len).map(|_| (splitmix(&mut seed) % 20) as u8).collect())
}

fn raw_sets() -> impl Strategy<Value = Vec<u32>> {
    ((0usize..=12), (0u64..u64::MAX)).prop_map(|(len, mut seed)| {
        (0..len).map(|_| (splitmix(&mut seed) % (1 << 12)) as u32).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn config_sort_order_matches_vec_model(raw in raw_labels()) {
        let cfg = Config::new(raw.iter().map(|&i| Label::new(i)).collect());
        let model = vec_model(&raw);
        prop_assert_eq!(cfg.as_slice(), model.as_slice());
        // FromIterator and from_labels agree with the Vec-consuming path.
        let collected: Config = raw.iter().map(|&i| Label::new(i)).collect();
        prop_assert_eq!(&collected, &cfg);
        let from_slice =
            Config::from_labels(&raw.iter().map(|&i| Label::new(i)).collect::<Vec<_>>());
        prop_assert_eq!(&from_slice, &cfg);
    }

    #[test]
    fn config_ord_and_hash_agree_with_vec_model(a in raw_labels(), b in raw_labels()) {
        let (ca, cb) = (
            Config::new(a.iter().map(|&i| Label::new(i)).collect()),
            Config::new(b.iter().map(|&i| Label::new(i)).collect()),
        );
        let (ma, mb) = (vec_model(&a), vec_model(&b));
        // Vec's Ord/Eq are the slice's — the inline storage must agree.
        prop_assert_eq!(ca.cmp(&cb), ma.cmp(&mb));
        prop_assert_eq!(ca == cb, ma == mb);
        // Vec's Hash is the length-prefixed slice hash; `Config` hashing
        // is a newtype layer over it, so equal models ⇒ equal hashes and
        // (for this deterministic hasher) model-order-independence.
        if ma == mb {
            prop_assert_eq!(hash_of(&ca), hash_of(&cb));
        }
    }

    #[test]
    fn setconfig_matches_vec_model(raw in raw_sets()) {
        let sc = SetConfig::new(raw.iter().map(|&b| LabelSet::from_bits(b)).collect());
        let mut model: Vec<LabelSet> = raw.iter().map(|&b| LabelSet::from_bits(b)).collect();
        model.sort_unstable();
        prop_assert_eq!(sc.as_slice(), model.as_slice());
        let collected: SetConfig = raw.iter().map(|&b| LabelSet::from_bits(b)).collect();
        prop_assert_eq!(&collected, &sc);
        // count() agrees with a linear scan for every element present.
        for &s in model.iter() {
            let naive = model.iter().filter(|&&x| x == s).count() as u32;
            prop_assert_eq!(sc.count(s), naive);
        }
    }

    #[test]
    fn config_count_and_mutators_match_model(raw in raw_labels(), probe in 0u8..20) {
        let cfg = Config::new(raw.iter().map(|&i| Label::new(i)).collect());
        let model = vec_model(&raw);
        let label = Label::new(probe);
        let naive = model.iter().filter(|&&l| l == label).count() as u32;
        prop_assert_eq!(cfg.count(label), naive);
        prop_assert_eq!(cfg.contains(label), naive > 0);
        // with(): same as inserting into the model and re-sorting.
        let mut grown = model.clone();
        grown.push(label);
        grown.sort_unstable();
        let with = cfg.with(label);
        prop_assert_eq!(with.as_slice(), grown.as_slice());
        // replace_one(): first occurrence replaced, re-sorted.
        let target = Label::new(probe % 20);
        let expected = model.iter().position(|&l| l == target).map(|pos| {
            let mut m = model.clone();
            m[pos] = Label::new(0);
            m.sort_unstable();
            m
        });
        prop_assert_eq!(
            cfg.replace_one(target, Label::new(0)).map(|c| c.as_slice().to_vec()),
            expected
        );
    }

    #[test]
    fn inline_vec_spill_boundary_is_unobservable(extra in 0usize..5) {
        // Build the same logical content just below, at, and above the
        // boundary; equality/hash/order must never depend on representation.
        let n = INLINE_DEGREE + extra;
        let content: Vec<u8> = (0..n as u8).collect();
        let grown: InlineVec<u8, 8> = content.iter().copied().collect();
        let direct = InlineVec::<u8, 8>::from_slice(&content);
        prop_assert_eq!(grown.is_spilled(), n > INLINE_DEGREE);
        prop_assert_eq!(&grown, &direct);
        prop_assert_eq!(hash_of(&grown), hash_of(&direct));
        prop_assert_eq!(grown.as_slice(), content.as_slice());
    }
}

/// Golden canonical digests (FNV-1a 128 over the canonical text). These
/// values were recorded on the `Vec`-backed representation; the inline
/// refactor must serve the exact same bytes.
#[test]
fn canonical_digests_unchanged_by_inline_storage() {
    let mis = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
    assert_eq!(mis.canonical_digest(), "c633598dbe7699f769d135cf09462198");
    let r = r_step(&mis).unwrap().problem;
    assert_eq!(r.canonical_digest(), "8ebc3bcf8d8fb15e0e3419a77ef7a7a9");
    let rr = rbar_step(&r).unwrap().problem;
    assert_eq!(rr.canonical_digest(), "0b9ce17dc3d7fc1e6b4cdf09e2e69361");
}

/// Degree-9 (> INLINE_DEGREE) problems exercise the spilled representation
/// end-to-end: a full `R̄(R(·))` pipeline on a degree-9 sinkless-orientation
/// encoding must agree between the parallel engine and the sequential
/// reference, spill or no spill.
#[test]
fn spilled_configs_survive_a_full_step() {
    let so9 = Problem::from_text("O I I I I I I I I", "[O I] I").unwrap();
    assert_eq!(so9.delta(), 9);
    let r = r_step(&so9).unwrap();
    let seq = rbar_step(&r.problem).unwrap();
    for threads in [2, 8] {
        let engine = relim_core::Engine::builder().threads(threads).build();
        let par = engine.rbar_step(&r.problem).unwrap();
        assert_eq!(par.problem.render(), seq.problem.render(), "threads = {threads}");
    }
}
