//! The concurrency battery for the sharded [`SubIndexCache`]: M threads
//! running clones of one [`Engine`] session over a shared cache must be
//! **byte-identical** to a fresh single-threaded engine — across
//! memoization on/off and shard counts 1/4/16 — and hammering one
//! constraint from every thread must never show more duplicate index
//! builds than the benign lookup→build→insert race allows (at most one
//! extra build per racing thread, never a wrong byte).

use proptest::prelude::*;
use relim_core::iterate::{IterationOutcome, SubIndexCache};
use relim_core::{Engine, Problem};
use std::sync::{Arc, Barrier};

/// The full observable surface of an iteration: stats, stop reason and
/// every intermediate problem, rendered.
fn render(o: &IterationOutcome) -> String {
    let rendered: Vec<String> = o.problems.iter().map(Problem::render).collect();
    format!("{:?}\n{:?}\n{}", o.stats, o.stopped, rendered.join("\n---\n"))
}

/// A workload mixing a fixed point, doubly-exponential growth, a trivial
/// problem and a second fixed point — repeated probes recur on the same
/// node constraints, so threads genuinely share cache entries.
const PROBLEMS: &[(&str, &str, usize, usize)] = &[
    ("O I I", "[O I] I", 4, 20),
    ("M M M\nP O O", "M [P O]\nO O", 2, 20),
    ("A A", "A A", 3, 20),
    ("O I I I", "[O I] I", 4, 20),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// M engine-clone threads over one shared sharded cache, each
    /// walking the workload from a rotated offset (so different threads
    /// populate and consume different entries first), must reproduce the
    /// fresh single-threaded reference byte-for-byte — with memoization
    /// on or off, at 1, 4 and 16 shards.
    #[test]
    fn engine_clones_sharing_the_cache_match_a_fresh_sequential_engine(
        threads in 2usize..=6,
        shard_idx in 0usize..3,
        memoize_bit in 0usize..2,
        rotation in 0usize..4,
    ) {
        let shards = [1usize, 4, 16][shard_idx];
        let memoize = memoize_bit == 1;
        let references: Vec<String> = PROBLEMS
            .iter()
            .map(|&(node, edge, steps, limit)| {
                let p = Problem::from_text(node, edge).unwrap();
                render(&Engine::sequential().iterate_with_limits(&p, steps, limit))
            })
            .collect();

        let engine =
            Engine::builder().threads(1).cache_shards(shards).memoize(memoize).build();
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let engine = engine.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    (0..PROBLEMS.len())
                        .map(|i| {
                            let idx = (i + t + rotation) % PROBLEMS.len();
                            let (node, edge, steps, limit) = PROBLEMS[idx];
                            let p = Problem::from_text(node, edge).unwrap();
                            (idx, render(&engine.iterate_with_limits(&p, steps, limit)))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (idx, got) in handle.join().expect("worker panicked") {
                prop_assert_eq!(
                    &got,
                    &references[idx],
                    "threads={} shards={} memoize={} problem #{} drifted",
                    threads,
                    shards,
                    memoize,
                    idx
                );
            }
        }
        let report = engine.report();
        prop_assert_eq!(report.cache_shards, shards);
        if memoize {
            prop_assert!(
                report.cache_hits >= 1,
                "shared probes of recurring constraints must hit: {:?}",
                report
            );
        } else {
            prop_assert_eq!(report.cache_hits, 0, "memoization off never hits");
        }
    }
}

/// Every thread hammers the *same* problem through one shared session.
/// Each run performs exactly one index lookup, so across two waves of M
/// runs there are 2·M lookups; only the first wave's racing window may
/// build — at most once per thread, the benign race bound — and the
/// second wave must be answered entirely from the shared cache.
#[test]
fn same_constraint_hammer_stays_within_the_benign_race_bound() {
    let so = Problem::from_text("O I I", "[O I] I").unwrap();
    let reference = render(&Engine::sequential().iterate_with_limits(&so, 5, 20));
    for shards in [1usize, 4, 16] {
        let threads = 8usize;
        let engine = Engine::builder().threads(1).cache_shards(shards).build();
        let run_wave = |wave: usize| {
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let engine = engine.clone();
                    let p = so.clone();
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        barrier.wait();
                        render(&engine.iterate_with_limits(&p, 5, 20))
                    })
                })
                .collect();
            for handle in handles {
                let got = handle.join().expect("hammer thread panicked");
                assert_eq!(got, reference, "shards={shards} wave={wave} drifted");
            }
        };

        run_wave(1);
        let after_first = engine.report();
        assert_eq!(
            after_first.cache_hits + after_first.cache_misses,
            threads as u64,
            "one lookup per run: {after_first:?}"
        );
        assert!(after_first.cache_misses >= 1, "someone built: {after_first:?}");
        assert!(
            after_first.cache_misses <= threads as u64,
            "duplicate builds beyond the benign race bound: {after_first:?}"
        );
        assert_eq!(after_first.cache_entries, 1, "one constraint, one entry");

        run_wave(2);
        let after_second = engine.report();
        assert_eq!(
            after_second.cache_misses, after_first.cache_misses,
            "a warm cache must not build again: {after_second:?}"
        );
        assert_eq!(
            after_second.cache_hits,
            after_first.cache_hits + threads as u64,
            "the second wave is served entirely from cache: {after_second:?}"
        );
    }
}

/// The raw cache under the same hammer: M threads calling
/// `get_or_build` on one constraint get pointer-identical or
/// byte-identical indices, and the counters balance exactly.
#[test]
fn raw_cache_hammer_counters_balance() {
    let p = Problem::from_text("M M M\nP O O", "M [P O]\nO O").unwrap();
    let expected = p.node().sub_multiset_index().len();
    for shards in [1usize, 4, 16] {
        let threads = 8usize;
        let cache = Arc::new(SubIndexCache::sharded(shards, 64));
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let constraint = p.node().clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_build(&constraint).len()
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), expected, "shards = {shards}");
        }
        assert_eq!(cache.hits() + cache.misses(), threads as u64, "shards = {shards}");
        assert!(cache.misses() >= 1 && cache.misses() <= threads as u64, "shards = {shards}");
        assert_eq!(cache.len(), 1, "shards = {shards}");
    }
}
