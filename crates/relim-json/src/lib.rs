//! A minimal JSON value, serializer and strict parser.
//!
//! Shared by the `bench` baseline (`BENCH_relim.json`, the
//! `bench-driver --diff` gate) and the `relim-service` JSON-lines wire
//! protocol. Hand-rolled because the build environment has no crates.io
//! route (see `vendor/README.md` for the same story on `rand`/
//! `proptest`/`criterion`).
//!
//! The parser is *strict about document boundaries*: [`Json::parse`]
//! consumes exactly one top-level value and rejects any trailing
//! non-whitespace content — a wire protocol that framed two messages into
//! one line, or a baseline file with a concatenated duplicate, must fail
//! loudly rather than silently dropping the tail.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without exponent).
    Int(i64),
    /// A float (non-finite values serialize as `null`).
    Float(f64),
    /// A string (escaped on serialization).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses a JSON document (the subset this crate emits: no duplicate
    /// keys are checked, numbers are `i64` or `f64`). Exactly one
    /// top-level value must span the whole input — trailing
    /// non-whitespace content (a second value, a stray bracket, garbage
    /// bytes) is a hard error, never silently ignored.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error,
    /// or a `trailing content` message naming the offending bytes.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            let tail = String::from_utf8_lossy(&p.bytes[p.pos..]);
            let snippet: String = tail.chars().take(20).collect();
            return Err(format!(
                "trailing content at byte {} after the top-level value: `{snippet}`",
                p.pos
            ));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this value is a number (`Int` or `Float`).
    pub fn is_number(&self) -> bool {
        matches!(self, Json::Int(_) | Json::Float(_))
    }

    /// A short kind name for diff messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("expected a JSON value at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = match code {
                                // High surrogate: the spec encodes astral
                                // characters as a \uXXXX\uYYYY pair —
                                // combine it (strictly; a lone half is a
                                // malformed document, not data to mangle).
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err(format!(
                                            "unpaired high surrogate before byte {}",
                                            self.pos
                                        ));
                                    }
                                    self.pos += 1;
                                    self.eat(b'u').map_err(|_| {
                                        format!("unpaired high surrogate before byte {}", self.pos)
                                    })?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(format!(
                                            "invalid low surrogate before byte {}",
                                            self.pos
                                        ));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined).expect("valid supplementary scalar")
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(format!(
                                        "unpaired low surrogate before byte {}",
                                        self.pos
                                    ))
                                }
                                other => char::from_u32(other)
                                    .expect("non-surrogate BMP code point is a scalar"),
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(format!(
                                "unknown escape `\\{}` at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    /// Reads exactly four hex digits (one `\uXXXX` payload).
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("invalid number `{text}` at byte {start}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("invalid number `{text}` at byte {start}"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

impl Json {
    /// Serializes with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no trailing newline — the
    /// framing the `relim-service` JSON-lines protocol requires (string
    /// values escape their newlines, so the output can never contain a
    /// raw `\n`).
    ///
    /// ```
    /// use relim_json::Json;
    ///
    /// let v = Json::Obj(vec![
    ///     ("ok".into(), Json::Bool(true)),
    ///     ("msg".into(), Json::str("two\nlines")),
    /// ]);
    /// assert_eq!(v.render_compact(), r#"{"ok": true, "msg": "two\nlines"}"#);
    /// assert!(!v.render_compact().contains('\n'));
    /// ```
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_compact(out);
                }
                out.push('}');
            }
            other => other.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) if f.is_finite() => {
                let _ = write!(out, "{f}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-42).render(), "-42\n");
        assert_eq!(Json::Float(1.5).render(), "1.5\n");
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
    }

    #[test]
    fn escaping() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let v = Json::Obj(vec![
            ("schema".into(), Json::str("bench-relim/1")),
            ("quick".into(), Json::Bool(true)),
            ("speedup".into(), Json::Float(0.85)),
            ("nothing".into(), Json::Null),
            (
                "entries".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("id".into(), Json::str("lemma8_sweep_d4")),
                    ("wall_ns".into(), Json::Int(94545044)),
                    ("empty".into(), Json::Arr(vec![])),
                    ("note".into(), Json::str("a\"b\\c\nd\tü")),
                ])]),
            ),
        ]);
        let parsed = Json::parse(&v.render()).expect("round trip");
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nulll", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn parse_rejects_trailing_content_after_a_top_level_value() {
        // A second value, a stray close bracket, concatenated documents,
        // or raw garbage after ANY kind of top-level value must all fail
        // with a `trailing content` error — never be silently dropped.
        for (doc, tail_at) in [
            ("{\"a\": 1} {\"b\": 2}", 9),
            ("[1, 2]]", 6),
            ("[1, 2] extra", 7),
            ("true false", 5),
            ("null,", 4),
            ("42garbage", 2),
            ("\"done\"!", 6),
            ("{\"a\": 1}\n{\"a\": 1}", 9),
        ] {
            let err = Json::parse(doc).expect_err(&format!("`{doc}` must not parse"));
            assert!(err.contains("trailing content"), "`{doc}` -> {err}");
            assert!(err.contains(&format!("byte {tail_at}")), "`{doc}` -> {err}");
        }
        // Trailing *whitespace* is fine — it is not content.
        assert!(Json::parse("{\"a\": 1}\n\t \r\n").is_ok());
    }

    #[test]
    fn trailing_content_error_names_the_offending_bytes() {
        let err = Json::parse("[1] <!-- nope -->").unwrap_err();
        assert!(err.contains("`<!-- nope -->`"), "{err}");
        // Long tails are truncated to a readable snippet.
        let long = format!("[1] {}", "x".repeat(100));
        let err = Json::parse(&long).unwrap_err();
        assert!(err.contains(&"x".repeat(20)), "{err}");
        assert!(!err.contains(&"x".repeat(21)), "{err}");
    }

    #[test]
    fn unicode_escapes_combine_surrogate_pairs_strictly() {
        // A conformant foreign client (e.g. Python's ensure_ascii) sends
        // astral characters as surrogate pairs — they must decode to the
        // real character, not to replacement garbage.
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::str("😀"));
        assert_eq!(Json::parse("\"\\u00fc\\u2265\"").unwrap(), Json::str("ü≥"));
        // Lone or mis-ordered halves are malformed documents: reject.
        for bad in
            ["\"\\ud83d\"", "\"\\ud83d x\"", "\"\\ude00\"", "\"\\ud83d\\u0041\"", "\"\\ud83d\\n\""]
        {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.contains("surrogate"), "{bad}: {err}");
        }
    }

    #[test]
    fn scalar_accessors() {
        assert_eq!(Json::parse("7").unwrap().as_i64(), Some(7));
        assert_eq!(Json::parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(Json::parse("7.5").unwrap().as_i64(), None);
        assert_eq!(Json::parse("null").unwrap().as_bool(), None);
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"a\": [1, 2.5], \"b\": \"x\"}").unwrap();
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert!(arr[0].is_number() && arr[1].is_number());
        assert_eq!(v.kind(), "object");
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn compact_rendering_is_single_line_and_round_trips() {
        let v = Json::Obj(vec![
            ("op".into(), Json::str("autolb")),
            ("node".into(), Json::str("M M M\nP O O")),
            ("steps".into(), Json::Arr(vec![Json::Int(1), Json::Null, Json::Bool(false)])),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        let line = v.render_compact();
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(Json::parse(&line).unwrap(), v);
        assert_eq!(Json::parse(&v.render()).unwrap(), Json::parse(&line).unwrap());
    }

    #[test]
    fn structure_round_trip_shape() {
        let v = Json::Obj(vec![
            ("id".into(), Json::str("x")),
            ("runs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let text = v.render();
        assert!(text.contains("\"id\": \"x\""));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }
}
