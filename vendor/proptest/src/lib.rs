//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro, range strategies, `prop_map` / `prop_flat_map`,
//! tuple strategies, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! and `ProptestConfig::with_cases`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate (see
//! `vendor/README.md`). Differences from real proptest:
//!
//! * **No shrinking.** A failing case reports its values (via the
//!   assertion message) and the reproduction seed, but is not minimized.
//! * **Deterministic by default.** Every test derives its RNG stream from
//!   a fixed global seed XOR a hash of the test's name, so `cargo test`
//!   is reproducible run-to-run. Set `PROPTEST_SEED=<u64>` to explore a
//!   different stream, and `PROPTEST_CASES=<u32>` to scale the number of
//!   cases up or down globally (both documented in the workspace README).
#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies (no shrinking).
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod test_runner {
    //! Execution support for [`crate::proptest!`]-generated tests.
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration. Only `cases` is honored by this shim.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
        /// Maximum rejections (`prop_assume!` failures) tolerated per test.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }

        /// `cases` scaled by the `PROPTEST_CASES` env override, if set.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => n.max(1),
                None => self.cases,
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64, max_global_rejects: 65536 }
        }
    }

    /// The RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        /// The underlying deterministic generator.
        pub rng: StdRng,
    }

    /// The fixed default global seed (PODC'21 vintage): reproducible runs
    /// unless `PROPTEST_SEED` says otherwise.
    pub const DEFAULT_SEED: u64 = 0xBBC0_2021_D15C_0BA1;

    impl TestRng {
        /// Derives the per-test stream from the global seed ⊕
        /// FNV-1a(test name); returns the rng and the **global** seed so
        /// failure messages can report how to reproduce.
        pub fn for_test(test_name: &str) -> (Self, u64) {
            let global = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(DEFAULT_SEED);
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            (TestRng { rng: StdRng::seed_from_u64(global ^ h) }, global)
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs — try other inputs.
        Reject(String),
        /// A `prop_assert*!` failed — the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given reason.
        pub fn reject<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type the generated test bodies return.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a normal `#[test]` that runs the body over `cases`
/// generated inputs. See the crate docs for the determinism contract.
#[macro_export]
macro_rules! proptest {
    // Internal: no more items.
    (@impl ($cfg:expr); ) => {};
    // Internal: one test item, then recurse. The user's `#[test]` arrives
    // as one of the passed-through `$meta`s, exactly as in real proptest.
    (@impl ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let cases = config.resolved_cases();
            let (mut rng, seed) = $crate::test_runner::TestRng::for_test(stringify!($name));
            // Bind each strategy to its argument's name; the loop below
            // shadows those names with generated values.
            $(let $arg = $strat;)+
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({rejected})",
                                stringify!($name)
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (reproduce with PROPTEST_SEED={}): {}",
                            stringify!($name),
                            accepted,
                            seed,
                            msg
                        );
                    }
                }
            }
        }
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    // Entry with a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    // Entry without a config header.
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            a,
            b,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: `{:?}` == `{:?}`", a, b);
    }};
}

/// Rejects the current case (does not count toward `cases`) when the
/// hypothesis does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Ranges respect their bounds.
        #[test]
        fn in_bounds(x in 3u32..10, y in 0u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
        }

        /// Dependent generation via flat_map keeps the invariant.
        #[test]
        fn flat_map_dependent(pair in (2usize..8).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k={k} n={n}");
        }

        /// prop_map transforms values.
        #[test]
        fn mapped(v in (1u32..5).prop_map(|x| x * 10)) {
            prop_assert!(v % 10 == 0 && (10..50).contains(&v));
        }

        /// Assumptions reject without failing.
        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let (mut a, sa) = crate::test_runner::TestRng::for_test("t");
        let (mut b, sb) = crate::test_runner::TestRng::for_test("t");
        assert_eq!(sa, sb);
        let va: Vec<u32> = (0..8).map(|_| Strategy::generate(&(0u32..1000), &mut a)).collect();
        let vb: Vec<u32> = (0..8).map(|_| Strategy::generate(&(0u32..1000), &mut b)).collect();
        assert_eq!(va, vb);
    }
}
