//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, [`SeedableRng`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`) and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate (see
//! `vendor/README.md`). The generator is xoshiro256++ seeded via SplitMix64;
//! it is deterministic for a given seed, which is exactly the property the
//! simulator and tests rely on. It makes **no** cryptographic claims, and
//! its streams differ from the real `StdRng` (ChaCha12) — only the API
//! contract is preserved.
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds (the `rand` 0.8 trait, trimmed).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 —
    /// different `u64` seeds give unrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step (public-domain constants).
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                // Modulo bias is ≤ span/2^64 — irrelevant for simulation use.
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + OneStep> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.back_one())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper: predecessor, for converting `a..b` to `a..=b-1`.
pub trait OneStep {
    /// `self - 1`.
    fn back_one(self) -> Self;
}

macro_rules! impl_one_step {
    ($($t:ty),*) => {$(
        impl OneStep for $t {
            fn back_one(self) -> Self { self - 1 }
        }
    )*};
}
impl_one_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods (the `rand` 0.8 `Rng` trait, trimmed).
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++ in this shim; the
    /// real `rand` uses ChaCha12 — streams differ, the API does not).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the shim's `SmallRng` is the same generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Slice sampling helpers (`rand::seq`, trimmed).
    use super::RngCore;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..10);
            assert!(x < 10);
            let y: u64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let z: i32 = rng.gen_range(-3..3);
            assert!((-3..3).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
