//! Offline stand-in for the subset of `criterion` this workspace uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], `sample_size`,
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate (see
//! `vendor/README.md`). It is a wall-clock timer, not a statistics
//! engine: each benchmark runs `sample_size` timed samples after one
//! warm-up sample and reports min / median / max per-iteration time.
//! Good enough to (a) keep all 15 bench targets compiling and running in
//! CI and (b) spot order-of-magnitude regressions; swap in the real
//! criterion when the environment gains registry access.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (a wall-clock shim of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_iters: 1 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (min 1).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Number of closure iterations per sample (min 1).
    pub fn measurement_iters(mut self, n: u64) -> Self {
        self.measurement_iters = n.max(1);
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size + 1);
        // One warm-up sample plus `sample_size` recorded samples.
        for _ in 0..=self.sample_size {
            let mut b = Bencher { iters: self.measurement_iters, elapsed: Duration::ZERO };
            f(&mut b);
            samples.push(b.per_iter());
        }
        samples.remove(0);
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "bench {id:<44} median {:>12?}  (min {:?}, max {:?}, samples {})",
            median,
            samples[0],
            samples[samples.len() - 1],
            samples.len()
        );
        self
    }
}

/// Times closures for one sample.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    fn per_iter(&self) -> Duration {
        self.elapsed / (self.iters.max(1) as u32)
    }
}

/// Declares a benchmark group, in either the plain or the `name = ...,
/// config = ..., targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn plain_form_compiles() {
        criterion_group!(plain, sample_bench);
        plain();
    }
}
