//! Cross-crate integration tests for the automatic bound search
//! (`autolb` / `autoub`), the coloring-input 0-round criteria, the
//! CONGEST accounting, and the Δ-independent tree MIS — the extension
//! layer on top of the paper's hand-crafted chain (see `tests/pipeline.rs`
//! for the latter).

use mis_domset_lb::algos::{domset, luby, tree_mis};
use mis_domset_lb::family::family::{self, PiParams};
use mis_domset_lb::family::sequence;
use mis_domset_lb::relim::autolb::{self, AutoLbOptions, Triviality};
use mis_domset_lb::relim::autoub::{self, AutoUbOptions, UbKind};
use mis_domset_lb::relim::{zeroround, Problem};
use mis_domset_lb::sim::checkers::check_mis;
use mis_domset_lb::sim::congest::{run_congest, MessageSize};
use mis_domset_lb::sim::runner::RunConfig;
use mis_domset_lb::sim::{trees, Graph};
use mis_domset_lb::Engine;

/// Lemma 12 certifies that every `Π_Δ(a,x)` with `a ≥ 1`, `x ≤ Δ−1` is
/// non-trivial even given the Δ-edge coloring; the automatic search must
/// therefore certify at least one round from any family member, with a
/// replayable certificate.
#[test]
fn autolb_certifies_family_members() {
    for (delta, a, x) in [(3u32, 3u32, 0u32), (4, 4, 0), (4, 3, 1)] {
        let p = family::pi(&PiParams { delta, a, x }).unwrap();
        let opts = AutoLbOptions { max_steps: 1, label_budget: 6, ..Default::default() };
        let outcome = Engine::sequential().auto_lower_bound(&p, &opts);
        assert!(
            outcome.certified_rounds >= 1,
            "Π_{delta}({a},{x}): certified {}",
            outcome.certified_rounds
        );
        assert_eq!(autolb::verify_chain(&outcome).unwrap(), outcome.certified_rounds);
    }
}

/// The automatic chain from the paper's own MIS encoding at Δ = 3 extends
/// beyond the input problem: the engine rediscovers (a weak form of) the
/// paper's result without any of the hand-crafted Lemma 6–9 machinery.
#[test]
fn autolb_extends_mis_chain() {
    let mis = family::mis(3).unwrap();
    let opts = AutoLbOptions { max_steps: 2, label_budget: 6, ..Default::default() };
    let outcome = Engine::sequential().auto_lower_bound(&mis, &opts);
    assert!(outcome.certified_rounds >= 2, "certified {}", outcome.certified_rounds);
    assert_eq!(autolb::verify_chain(&outcome).unwrap(), outcome.certified_rounds);
    // The merges recorded are genuine (every step within budget).
    for step in &outcome.steps {
        assert!(step.problem.alphabet().len() <= 6);
    }
}

/// The paper's hand-crafted chain (Lemma 13 schedule) and the automatic
/// search agree on the *direction* of the bound; the hand-crafted chain is
/// far longer at large Δ, which is exactly why the paper's analysis is
/// needed.
#[test]
fn paper_chain_beats_generic_search_at_scale() {
    let delta = 4096;
    let paper = sequence::paper_chain(delta, 0);
    // The paper certifies Ω(log Δ) rounds at Δ = 4096.
    assert!(paper.pn_round_lower_bound() >= 3);
    // The generic engine cannot even take one step at Δ = 4096 within a
    // sane label budget — the hand-crafted family is the whole point.
    let mis = family::mis(8).unwrap(); // already Δ = 8 is heavy for raw rr
    let opts = AutoLbOptions { max_steps: 1, label_budget: 4, ..Default::default() };
    let outcome = Engine::sequential().auto_lower_bound(&mis, &opts);
    // Whatever happens (engine error, no viable merge, or one step), the
    // certificate must stay consistent.
    assert_eq!(autolb::verify_chain(&outcome).unwrap(), outcome.certified_rounds);
}

/// MIS on cycles: 0-round solvable given a proper 2-coloring (map color 1
/// to MM and color 2 to PO), but **not** given a 3-coloring — a fact the
/// clique criterion decides exactly.
#[test]
fn mis_on_cycles_coloring_criteria() {
    let mis2 = family::mis(2).unwrap();
    assert!(zeroround::coloring_witness(&mis2, 2).is_some());
    assert!(zeroround::coloring_witness(&mis2, 3).is_none());
    assert_eq!(zeroround::max_coloring_solvable(&mis2, 8), Some(2));

    // Given a 3-coloring the greedy sweep needs a constant number of
    // rounds; autoub finds and certifies such a bound.
    let opts = AutoUbOptions { max_steps: 6, label_budget: 14, coloring: Some(3) };
    let outcome = Engine::sequential().auto_upper_bound(&mis2, &opts);
    let bound = outcome.bound.clone().expect("constant bound exists");
    assert!(bound.rounds >= 1, "not 0-round solvable with 3 colors");
    assert_eq!(bound.kind, UbKind::VertexColoring { colors: 3 });
    assert_eq!(autoub::verify_ub(&outcome).unwrap(), Some(bound.rounds));
}

/// Upper and lower automatic bounds are consistent on a mixed sample of
/// problems: whenever both exist (same criterion strength), lb ≤ ub.
#[test]
fn automatic_bounds_are_consistent() {
    for (node, edge) in
        [("A A A", "A A"), ("M O", "M M;O O"), ("M M;P O", "M [P O];O O"), ("A A;B B", "A B")]
    {
        let p = Problem::from_text(&node.replace(';', "\n"), &edge.replace(';', "\n")).unwrap();
        let engine = Engine::sequential();
        let lb = engine.auto_lower_bound(
            &p,
            &AutoLbOptions { max_steps: 3, label_budget: 8, triviality: Triviality::Universal },
        );
        let ub = engine.auto_upper_bound(
            &p,
            &AutoUbOptions { max_steps: 3, label_budget: 14, coloring: None },
        );
        if let Some(bound) = &ub.bound {
            if bound.kind == UbKind::Pn {
                assert!(
                    lb.certified_rounds <= bound.rounds,
                    "{node}/{edge}: lb {} > ub {}",
                    lb.certified_rounds,
                    bound.rounds
                );
            }
        }
    }
}

/// Luby's MIS is CONGEST-compatible on moderately large trees: its
/// messages are a lottery value or a bit, 65 bits max.
#[test]
fn luby_fits_congest_on_large_trees() {
    let g = trees::random_tree(400, 8, 1).unwrap();
    let config = RunConfig::port_numbering(3, 200);
    let inputs = vec![(); g.n()];
    let report = run_congest::<luby::Luby>(&g, &inputs, &config).unwrap();
    check_mis(&g, &report.outputs).unwrap();
    assert_eq!(report.stats.max_message_bits, 65);
    assert!(report.stats.is_congest(g.n()), "budget {}", report.stats.max_message_bits);
}

/// The layered tree-MIS sweep also fits CONGEST (full-state messages are
/// two flags plus one color).
#[test]
fn tree_mis_sweep_fits_congest() {
    let g = trees::random_tree(300, 12, 2).unwrap();
    let hp = tree_mis::h_partition(&g, 0).unwrap();
    let inputs: Vec<tree_mis::LayerInput> = hp
        .layers
        .iter()
        .map(|&layer| tree_mis::LayerInput { layer, num_layers: hp.num_layers })
        .collect();
    let config = RunConfig::local(&g, 5, 4000);
    let report = run_congest::<tree_mis::LayeredSweep>(&g, &inputs, &config).unwrap();
    check_mis(&g, &report.outputs).unwrap();
    assert_eq!(report.stats.max_message_bits, 66);
    assert!(report.stats.is_congest(g.n()));
}

/// On a high-degree tree the Δ-independent algorithm needs far fewer
/// rounds than the Δ-dependent deterministic sweep — the trade-off the
/// paper's §1.3 discussion of tree algorithms is about.
#[test]
fn tree_mis_beats_delta_sweep_on_wide_trees() {
    let g = trees::star(200).unwrap(); // Δ = 200
    let wide = tree_mis::tree_mis(&g, 1).unwrap();
    check_mis(&g, &wide.in_set).unwrap();
    let sweep = domset::mis_deterministic(&g, 1).unwrap();
    check_mis(&g, &sweep.in_set).unwrap();
    assert!(
        wide.rounds.total() < sweep.rounds.total(),
        "tree_mis {} vs sweep {}",
        wide.rounds.total(),
        sweep.rounds.total()
    );
}

/// Message-size accounting composes through containers the way the wire
/// encoding would.
#[test]
fn message_size_composition() {
    assert_eq!(().size_bits(), 0);
    assert_eq!(true.size_bits(), 1);
    assert_eq!(7u64.size_bits(), 64);
    assert_eq!(Some(7u32).size_bits(), 33);
    assert_eq!(None::<u32>.size_bits(), 1);
    assert_eq!(vec![1u8, 2, 3].size_bits(), 32 + 24);
    assert_eq!((true, 1u16).size_bits(), 17);
    assert_eq!((true, 1u16, vec![false]).size_bits(), 17 + 33);
}

/// The universal and gadget criteria nest correctly on every family
/// member and on their `R̄(R(·))` derivatives.
#[test]
fn criteria_nest_on_family() {
    for (delta, a, x) in [(3u32, 2u32, 0u32), (4, 3, 1), (5, 4, 2)] {
        let p = family::pi(&PiParams { delta, a, x }).unwrap();
        // Universal solvable ⇒ gadget solvable (contrapositive checked).
        assert!(!zeroround::solvable_deterministically(&p));
        assert!(!zeroround::solvable_pn_universal(&p));
    }
}

/// Cycles vs paths: the Cole–Vishkin pipeline and tree MIS agree with the
/// checkers on both topologies.
#[test]
fn degree_two_topologies_end_to_end() {
    use mis_domset_lb::algos::cole_vishkin;
    let cycle = Graph::cycle(30).unwrap();
    let (cv_set, _) = cole_vishkin::cv_mis(&cycle, 3).unwrap();
    check_mis(&cycle, &cv_set).unwrap();

    let path = trees::path(30).unwrap();
    let rep = tree_mis::tree_mis(&path, 3).unwrap();
    check_mis(&path, &rep.in_set).unwrap();
    assert_eq!(rep.num_layers, 1);
}
