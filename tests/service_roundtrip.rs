//! The serving layer's acceptance criteria, exercised through the
//! facade: submitting the same `autolb` query twice against a running
//! daemon returns byte-identical results with the second served from the
//! persistent store, and a served result is byte-identical to the same
//! query run in-process at engine widths 1, 2 and 8.

use mis_domset_lb::service::queue::Class;
use mis_domset_lb::service::server::{Server, ServerConfig};
use mis_domset_lb::{Client, Engine, OpRequest};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("relim-facade-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The headline query of the acceptance criterion: an `autolb` merge
/// search on the paper's Δ=3 MIS problem.
fn autolb_query() -> OpRequest {
    OpRequest::auto_lb("M M M;P O O", "M [P O];O O").unwrap()
}

#[test]
fn same_autolb_query_twice_second_from_persistent_store_byte_identical() {
    let dir = scratch("twice");
    let config = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
    let handle = Server::spawn("127.0.0.1:0", config).unwrap();
    let client = Client::new(handle.local_addr().to_string());
    let op = autolb_query();

    let first = client.submit(&op, None).unwrap();
    assert!(!first.cached, "a cold store cannot hit");
    assert!(first.result.contains("certificate replay: OK"), "{}", first.result);

    let second = client.submit(&op, None).unwrap();
    assert!(second.cached, "the second identical query must be a store hit");
    assert_eq!(second.result, first.result, "served bytes must be identical");
    assert_eq!(second.digest, first.digest);

    // The hit is backed by a real file under the store directory.
    let path = dir.join(format!("{}.json", first.digest));
    assert!(path.is_file(), "persistent entry missing: {}", path.display());

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn served_autolb_is_byte_identical_to_in_process_runs_at_threads_1_2_8() {
    let op = autolb_query();
    let sequential = op.execute(&Engine::sequential()).unwrap();
    for threads in [1usize, 2, 8] {
        // In-process: an Engine session of this width.
        let in_process = op.execute(&Engine::builder().threads(threads).build()).unwrap();
        assert_eq!(in_process, sequential, "in-process width {threads} drifted");

        // Served: a daemon whose shared engine has this width.
        let config = ServerConfig { threads, ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).unwrap();
        let client = Client::new(handle.local_addr().to_string());
        let served = client.submit(&op, None).unwrap();
        assert_eq!(served.result, in_process, "served width {threads} drifted");
        client.shutdown().unwrap();
        handle.join();
    }
}

/// Pins the concurrency surface of the status counters: the resolved
/// executor-pool width, per-kind store hits, and the coalescing / GC /
/// disk-byte counters — all exact, because the submissions are serial.
#[test]
fn status_counters_pin_executors_per_kind_hits_coalescing_and_gc() {
    use relim_json::Json;

    let dir = scratch("counters");
    let config = ServerConfig {
        executors: 2,
        store_dir: Some(dir.clone()),
        store_budget_bytes: Some(1 << 20),
        ..ServerConfig::default()
    };
    let handle = Server::spawn("127.0.0.1:0", config).unwrap();
    let client = Client::new(handle.local_addr().to_string());

    let autolb = autolb_query();
    let probe = OpRequest::iterate("O I I", "[O I] I").unwrap();
    assert!(!client.submit(&autolb, None).unwrap().cached);
    assert!(client.submit(&autolb, None).unwrap().cached);
    assert!(!client.submit(&probe, None).unwrap().cached);
    assert!(client.submit(&probe, None).unwrap().cached);

    let counters = client.status().unwrap();
    let at = |obj: &str, key: &str| {
        counters
            .get(obj)
            .and_then(|o| o.get(key))
            .and_then(Json::as_i64)
            .unwrap_or_else(|| panic!("counters missing {obj}.{key}: {counters:?}"))
    };
    assert_eq!(counters.get("executors").and_then(Json::as_i64), Some(2));
    assert_eq!(at("store_hits", "autolb"), 1);
    assert_eq!(at("store_hits", "iterate"), 1);
    assert_eq!(at("store_hits", "autoub"), 0);
    assert_eq!(at("store_hits", "sweep"), 0);
    assert_eq!(at("store_hits", "zero_round"), 0);
    assert_eq!(at("store", "coalesced"), 0, "serial submits never coalesce");
    assert_eq!(at("store", "gc_evictions"), 0, "a megabyte budget never collects here");
    assert!(at("store", "disk_bytes") > 0, "persistent entries are accounted");
    assert_eq!(at("ops", "autolb"), 2);
    assert_eq!(at("ops", "iterate"), 2);

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interactive_and_bulk_jobs_share_one_daemon_and_store() {
    let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::new(handle.local_addr().to_string());

    // A bulk sweep and an interactive probe through the same engine.
    let sweep = OpRequest::sweep(3, 8).unwrap();
    let probe = OpRequest::iterate("O I I", "[O I] I").unwrap();
    let bulk = client.submit(&sweep, Some(Class::Bulk)).unwrap();
    assert!(bulk.result.contains("VERIFIED"), "{}", bulk.result);
    let inter = client.submit(&probe, None).unwrap();
    assert!(inter.result.contains("FixedPoint"), "{}", inter.result);

    // Both are memoized independently.
    assert!(client.submit(&sweep, None).unwrap().cached);
    assert!(client.submit(&probe, None).unwrap().cached);

    client.shutdown().unwrap();
    handle.join();
}
