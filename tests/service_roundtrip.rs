//! The serving layer's acceptance criteria, exercised through the
//! facade: submitting the same `autolb` query twice against a running
//! daemon returns byte-identical results with the second served from the
//! persistent store, and a served result is byte-identical to the same
//! query run in-process at engine widths 1, 2 and 8.

use mis_domset_lb::service::queue::Class;
use mis_domset_lb::service::server::{Server, ServerConfig};
use mis_domset_lb::{Client, Engine, OpRequest};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("relim-facade-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The headline query of the acceptance criterion: an `autolb` merge
/// search on the paper's Δ=3 MIS problem.
fn autolb_query() -> OpRequest {
    OpRequest::auto_lb("M M M;P O O", "M [P O];O O").unwrap()
}

#[test]
fn same_autolb_query_twice_second_from_persistent_store_byte_identical() {
    let dir = scratch("twice");
    let config = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
    let handle = Server::spawn("127.0.0.1:0", config).unwrap();
    let client = Client::new(handle.local_addr().to_string());
    let op = autolb_query();

    let first = client.submit(&op, None).unwrap();
    assert!(!first.cached, "a cold store cannot hit");
    assert!(first.result.contains("certificate replay: OK"), "{}", first.result);

    let second = client.submit(&op, None).unwrap();
    assert!(second.cached, "the second identical query must be a store hit");
    assert_eq!(second.result, first.result, "served bytes must be identical");
    assert_eq!(second.digest, first.digest);

    // The hit is backed by a real file under the store directory.
    let path = dir.join(format!("{}.json", first.digest));
    assert!(path.is_file(), "persistent entry missing: {}", path.display());

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn served_autolb_is_byte_identical_to_in_process_runs_at_threads_1_2_8() {
    let op = autolb_query();
    let sequential = op.execute(&Engine::sequential()).unwrap();
    for threads in [1usize, 2, 8] {
        // In-process: an Engine session of this width.
        let in_process = op.execute(&Engine::builder().threads(threads).build()).unwrap();
        assert_eq!(in_process, sequential, "in-process width {threads} drifted");

        // Served: a daemon whose shared engine has this width.
        let config = ServerConfig { threads, ..ServerConfig::default() };
        let handle = Server::spawn("127.0.0.1:0", config).unwrap();
        let client = Client::new(handle.local_addr().to_string());
        let served = client.submit(&op, None).unwrap();
        assert_eq!(served.result, in_process, "served width {threads} drifted");
        client.shutdown().unwrap();
        handle.join();
    }
}

#[test]
fn interactive_and_bulk_jobs_share_one_daemon_and_store() {
    let handle = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::new(handle.local_addr().to_string());

    // A bulk sweep and an interactive probe through the same engine.
    let sweep = OpRequest::sweep(3, 8).unwrap();
    let probe = OpRequest::iterate("O I I", "[O I] I").unwrap();
    let bulk = client.submit(&sweep, Some(Class::Bulk)).unwrap();
    assert!(bulk.result.contains("VERIFIED"), "{}", bulk.result);
    let inter = client.submit(&probe, None).unwrap();
    assert!(inter.result.contains("FixedPoint"), "{}", inter.result);

    // Both are memoized independently.
    assert!(client.submit(&sweep, None).unwrap().cached);
    assert!(client.submit(&probe, None).unwrap().cached);

    client.shutdown().unwrap();
    handle.join();
}
