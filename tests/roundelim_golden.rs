//! Golden tests: `relim_core::roundelim::{r_step, rbar_step}` pinned to
//! the paper-known fixed points and first-step shapes.
//!
//! Two anchors from the round elimination literature (paper §1.3, §2.2):
//!
//! * **Sinkless orientation** (`O I^(Δ−1)` / `[O I] I`) is a fixed point
//!   of `R̄(R(·))` on Δ-regular trees for every Δ ≥ 3 (Brandt et al.,
//!   STOC'16).
//! * **MIS on Δ-regular trees** (`M M M; P O O` / `M [P O]; O O` at
//!   Δ = 3) is *not* a fixed point: its derivatives grow, which is
//!   exactly why the paper works with the `Π_Δ(a,x)` family instead.
//!   The first two derivative shapes are pinned here as golden values.
//!
//! If an engine change breaks one of these numbers, it changed the
//! mathematics, not just the code — investigate before updating the
//! golden value.

use mis_domset_lb::family::sinkless;
use mis_domset_lb::relim::roundelim::{self, rr_step};
use mis_domset_lb::relim::{iso, iterate, zeroround, Engine, Problem};

fn mis_delta3() -> Problem {
    Problem::from_text("M M M\nP O O", "M [P O]\nO O").expect("valid MIS encoding")
}

#[test]
fn sinkless_orientation_is_rr_fixed_point_for_small_delta() {
    for delta in 3..=6 {
        let so = sinkless::sinkless_orientation(delta).expect("valid SO");
        let (r, rr) = rr_step(&so).expect("SO derivatives exist");
        // Golden: R(SO) uses exactly the two set-labels {I} and {O I}.
        assert_eq!(r.problem.alphabet().len(), 2, "R(SO) alphabet at delta={delta}");
        let (reduced, _) = rr.problem.drop_unused_labels();
        assert!(iso::isomorphic(&reduced, &so), "R̄(R(SO)) not isomorphic to SO at delta={delta}");
    }
}

#[test]
fn sinkless_orientation_iteration_reports_fixed_point() {
    let so = sinkless::sinkless_orientation(3).expect("valid SO");
    let outcome = Engine::sequential().iterate_with_limits(&so, 5, 16);
    assert!(
        matches!(outcome.stopped, iterate::StopReason::FixedPoint),
        "expected FixedPoint, got {:?}",
        outcome.stopped
    );
    // Golden: the fixed point is recognized after a single step, with the
    // label/config profile unchanged (2 labels, |N| = 1, |E| = 2).
    let last = outcome.stats.last().expect("at least one step");
    assert_eq!((last.labels, last.node_configs, last.edge_configs), (2, 1, 2));
}

#[test]
fn mis_first_r_step_golden_shape() {
    let mis = mis_delta3();
    let step = roundelim::r_step(&mis).expect("R(MIS) exists");
    // Golden (matches Lemma 6's shape at the MIS point of the family):
    // R(MIS) at Δ=3 has exactly the four set-labels {M}, {O}, {M O},
    // {P O}.
    assert_eq!(step.problem.alphabet().len(), 4, "R(MIS) alphabet");
    let names: Vec<String> = step.provenance.iter().map(|s| s.display(mis.alphabet())).collect();
    assert_eq!(names, ["M", "O", "MO", "PO"], "R(MIS) provenance sets");
}

#[test]
fn mis_first_rr_step_golden_shape() {
    let mis = mis_delta3();
    let (_r, rr) = rr_step(&mis).expect("R̄(R(MIS)) exists");
    let (reduced, _) = rr.problem.drop_unused_labels();
    // Golden: 6 live labels, 4 node configurations, 11 edge
    // configurations after one full step.
    assert_eq!(reduced.alphabet().len(), 6, "labels after one RR step");
    assert_eq!(reduced.node().len(), 4, "node configs after one RR step");
    assert_eq!(reduced.edge().len(), 11, "edge configs after one RR step");
}

#[test]
fn mis_grows_and_never_reaches_a_fixed_point_early() {
    // Golden growth profile of iterated R̄(R(·)) on MIS (why the paper
    // needs the Π_Δ(a,x) family): 3 → 6 → 19 labels in two steps.
    let outcome = Engine::sequential().iterate_with_limits(&mis_delta3(), 2, 40);
    let labels: Vec<usize> = outcome.stats.iter().map(|s| s.labels).collect();
    assert_eq!(labels, [3, 6, 19], "label growth profile");
    assert!(
        !matches!(outcome.stopped, iterate::StopReason::FixedPoint),
        "MIS must not be reported as a fixed point"
    );
}

#[test]
fn zeroround_status_is_preserved_along_the_first_steps() {
    // Neither SO nor MIS is 0-round solvable, and (speedup direction)
    // triviality must not appear in one step for these anchors — their
    // lower bounds are > 1 round.
    for p in [sinkless::sinkless_orientation(3).expect("valid SO"), mis_delta3()] {
        assert!(!zeroround::solvable_deterministically(&p));
        let (_r, rr) = rr_step(&p).expect("derivative exists");
        let (reduced, _) = rr.problem.drop_unused_labels();
        assert!(!zeroround::solvable_deterministically(&reduced));
    }
}

#[test]
fn relaxed_so_encoding_lands_on_the_fixed_point() {
    // The strict-edge SO encoding is one RR step away from the
    // fixed-point encoding — the engine must find exactly it.
    let strict = sinkless::sinkless_orientation_strict_edges(3).expect("valid");
    let (_r, rr) = rr_step(&strict).expect("derivative exists");
    let (reduced, _) = rr.problem.drop_unused_labels();
    let fixed = sinkless::sinkless_orientation(3).expect("valid");
    assert!(iso::isomorphic(&reduced, &fixed));
}
