//! Failure injection: every checker and verifier in the workspace must
//! *reject* deliberately corrupted artifacts.
//!
//! The reproduction's claims rest on checker validation (EXPERIMENTS.md
//! records "checker-valid" everywhere), so a checker that accepts garbage
//! would silently void them. Each test below takes a known-good artifact,
//! applies a targeted, minimal corruption, and asserts the precise
//! rejection.

use mis_domset_lb::algos::{domset, luby, tree_mis};
use mis_domset_lb::family::family::{self, PiParams};
use mis_domset_lb::family::{convert, matchings};
use mis_domset_lb::sim::checkers::{self, Violation};
use mis_domset_lb::sim::lcl_solver::LeafPolicy;
use mis_domset_lb::sim::{edge_coloring, trees, Graph};

#[test]
fn mis_checker_rejects_independence_violation() {
    let g = trees::path(6).unwrap();
    let rep = luby::luby_mis(&g, 1).unwrap();
    checkers::check_mis(&g, &rep.in_set).unwrap();
    // Force two adjacent members.
    let mut bad = rep.in_set.clone();
    let v = (0..g.n()).find(|&v| bad[v]).unwrap();
    let u = g.neighbor(v, 0);
    bad[u] = true;
    assert!(matches!(checkers::check_mis(&g, &bad), Err(Violation::AdjacentPair { .. })));
}

#[test]
fn mis_checker_rejects_maximality_violation() {
    let g = trees::star(5).unwrap();
    let rep = luby::luby_mis(&g, 2).unwrap();
    // Empty set: center and leaves all undominated.
    let bad = vec![false; g.n()];
    assert!(matches!(checkers::check_mis(&g, &bad), Err(Violation::NotDominated { .. })));
    // Also: removing one member from a valid MIS breaks it.
    let mut weaker = rep.in_set.clone();
    let v = (0..g.n()).find(|&v| weaker[v]).unwrap();
    weaker[v] = false;
    assert!(checkers::check_mis(&g, &weaker).is_err());
}

#[test]
fn kods_checker_rejects_outdegree_overflow() {
    let k = 1usize;
    let g = trees::complete_regular_tree(4, 3).unwrap();
    let rep = domset::k_outdegree_domset(&g, k, 3).unwrap();
    checkers::check_k_outdegree_domset(&g, &rep.in_set, &rep.orientation, k).unwrap();
    // Claim a tighter bound than the solution satisfies — or corrupt the
    // set: adding every node forces in-set edges beyond outdegree k.
    let all = vec![true; g.n()];
    let mut orientation = mis_domset_lb::sim::Orientation::unoriented(g.m());
    for e in 0..g.m() {
        let (u, _) = g.edges()[e];
        orientation.orient_out_of(&g, e, u);
    }
    assert!(checkers::check_k_outdegree_domset(&g, &all, &orientation, 0).is_err());
}

#[test]
fn kods_checker_rejects_unoriented_in_set_edges() {
    let g = trees::path(4).unwrap();
    let all = vec![true; g.n()];
    let orientation = mis_domset_lb::sim::Orientation::unoriented(g.m());
    assert!(matches!(
        checkers::check_k_outdegree_domset(&g, &all, &orientation, 3),
        Err(Violation::UnorientedEdge { .. })
    ));
}

#[test]
fn coloring_checkers_reject_conflicts() {
    let g = trees::path(5).unwrap();
    let mut colors = vec![0usize, 1, 0, 1, 0];
    checkers::check_proper_coloring(&g, &colors).unwrap();
    colors[1] = 0;
    assert!(matches!(
        checkers::check_proper_coloring(&g, &colors),
        Err(Violation::ColorConflict { .. })
    ));
    // Defective: a monochromatic star center with 3 same-color neighbors
    // violates defect 2 but satisfies defect 3.
    let s = trees::star(3).unwrap();
    let mono = vec![0usize; s.n()];
    assert!(checkers::check_defective_coloring(&s, &mono, 3).is_ok());
    assert!(checkers::check_defective_coloring(&s, &mono, 2).is_err());
}

#[test]
fn matching_checkers_reject_oversaturation_and_nonmaximality() {
    let g = trees::complete_regular_tree(3, 2).unwrap();
    let coloring = edge_coloring::tree_edge_coloring(&g).unwrap();
    let rep = mis_domset_lb::algos::b_matching::maximal_b_matching(&g, &coloring, 1, 5).unwrap();
    checkers::check_maximal_b_matching(&g, &rep.in_matching, 1).unwrap();
    // Oversaturation: all edges in a b=1 matching.
    let all = vec![true; g.m()];
    assert!(checkers::check_maximal_b_matching(&g, &all, 1).is_err());
    // Non-maximality: the empty matching.
    let none = vec![false; g.m()];
    assert!(checkers::check_maximal_b_matching(&g, &none, 1).is_err());
    assert!(checkers::check_maximal_matching(&g, &none).is_err());
}

#[test]
fn matching_encoding_rejects_corrupted_labelings() {
    let g = trees::complete_regular_tree(4, 2).unwrap();
    let coloring = edge_coloring::tree_edge_coloring(&g).unwrap();
    let rep = mis_domset_lb::algos::b_matching::maximal_b_matching(&g, &coloring, 1, 5).unwrap();
    matchings::check_b_matching_labeling(&g, &rep.in_matching, 4, 1).unwrap();

    let problem = matchings::maximal_matching_problem(4).unwrap();
    let mut labeling = matchings::matching_to_labeling(&g, &rep.in_matching, 1).unwrap();
    // Corrupt one port: claim a matched edge where there is none.
    let v = (0..g.n())
        .find(|&v| labeling.node_labels(v).iter().filter(|&&l| l == 0).count() == 1)
        .expect("some matched node");
    let o_port = (0..g.degree(v)).find(|&p| labeling.get(v, p) != 0).expect("unmatched port");
    labeling.set(v, o_port, 0); // a second M at a b=1 node
    assert!(convert::check_labeling(&problem, &g, &labeling, convert::BoundaryPolicy::SubMultiset)
        .is_err());
}

#[test]
fn family_labeling_checker_rejects_corruption() {
    let params = PiParams { delta: 3, a: 2, x: 0 };
    let p = family::pi(&params).unwrap();
    let inst = convert::to_lcl(&p, LeafPolicy::SubMultiset).unwrap();
    let tree = trees::complete_regular_tree(3, 3).unwrap();
    let sol = inst.solve(&tree, 5).unwrap().expect("solvable");
    convert::check_labeling(&p, &tree, &sol, convert::BoundaryPolicy::SubMultiset).unwrap();
    // Flip every port of an interior node to M: MM edges appear.
    let mut bad = sol.clone();
    let m = p.alphabet().label("M").unwrap().raw();
    let interior = (0..tree.n()).find(|&v| tree.degree(v) == 3).unwrap();
    for port in 0..tree.degree(interior) {
        bad.set(interior, port, m);
    }
    for neighbor_port in 0..tree.degree(interior) {
        let u = tree.neighbor(interior, neighbor_port);
        for port in 0..tree.degree(u) {
            if tree.neighbor(u, port) == interior {
                bad.set(u, port, m);
            }
        }
    }
    assert!(
        convert::check_labeling(&p, &tree, &bad, convert::BoundaryPolicy::InteriorOnly).is_err()
    );
}

#[test]
fn h_partition_validator_rejects_bad_layers() {
    let g = trees::complete_regular_tree(3, 4).unwrap();
    let hp = tree_mis::h_partition(&g, 0).unwrap();
    assert!(tree_mis::check_h_partition(&g, &hp.layers));
    // Push the root to the bottom layer: it gains 3 up-neighbors.
    let mut bad = hp.layers.clone();
    let root_layer = *bad.iter().max().unwrap();
    let root = bad.iter().position(|&l| l == root_layer).unwrap();
    bad[root] = 0;
    // Only a corruption if the root actually had degree 3 neighbors above.
    if g.degree(root) == 3 {
        assert!(!tree_mis::check_h_partition(&g, &bad));
    }
}

#[test]
fn edge_coloring_validator_rejects_improper() {
    let g = trees::star(4).unwrap();
    let proper = edge_coloring::tree_edge_coloring(&g).unwrap();
    assert!(edge_coloring::is_proper(&g, &proper));
    let improper = mis_domset_lb::sim::EdgeColoring::new(vec![0; g.m()]);
    assert!(!edge_coloring::is_proper(&g, &improper));
}

#[test]
fn ruling_set_checker_rejects_uncovered_nodes() {
    let g = trees::path(9).unwrap();
    // Singleton at one end: not a (2, 2)-ruling set of a long path.
    let mut in_set = vec![false; g.n()];
    in_set[0] = true;
    assert!(matches!(
        checkers::check_ruling_set(&g, &in_set, 2, 2),
        Err(Violation::NotDominated { .. })
    ));
    // Members at both ends and middle: fine for beta = 2.
    in_set[4] = true;
    in_set[8] = true;
    checkers::check_ruling_set(&g, &in_set, 2, 2).unwrap();
    // Adjacent members violate alpha = 2.
    in_set[1] = true;
    assert!(matches!(
        checkers::check_ruling_set(&g, &in_set, 2, 2),
        Err(Violation::AdjacentPair { .. })
    ));
}

#[test]
fn shape_mismatches_rejected_everywhere() {
    let g = trees::path(4).unwrap();
    assert!(matches!(
        checkers::check_mis(&g, &[true, false]),
        Err(Violation::ShapeMismatch { .. })
    ));
    assert!(checkers::check_proper_coloring(&g, &[0]).is_err());
    assert!(matchings::matching_to_labeling(&g, &[true], 1).is_err());
    assert!(matchings::matching_from_line_mis(&g, &[true]).is_err());
}

#[test]
fn cycle_generator_and_line_graph_edge_cases() {
    assert!(Graph::cycle(2).is_err());
    let c3 = Graph::cycle(3).unwrap();
    assert_eq!(c3.girth(), Some(3));
    // The line graph of a triangle is a triangle.
    let l = c3.line_graph();
    assert_eq!((l.n(), l.m()), (3, 3));
}
