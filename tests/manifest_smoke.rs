//! Manifest smoke test: the workspace wiring itself is under test.
//!
//! Asserts that the facade crate's four re-exports (`relim`, `family`,
//! `sim`, `algos`) resolve and are the *same* crates the workspace
//! members export (not stale copies), and that the quickstart path —
//! the exact calls `examples/quickstart.rs` makes — works end to end.
//! The examples themselves are compiled by `cargo build --examples`
//! (run in CI); this test guards the library surface they rely on.

use mis_domset_lb::{algos, family, relim, sim};

#[test]
fn facade_reexports_resolve_and_interoperate() {
    // relim: engine types are usable through the facade path.
    let mis = relim::Problem::from_text("M M M\nP O O", "M [P O]\nO O").expect("parse");
    assert_eq!(mis.delta(), 3);

    // family: builds problems the engine accepts...
    let params = family::PiParams { delta: 4, a: 3, x: 1 };
    let pi = family::family::pi(&params).expect("valid params");

    // ...and the engine processes them: the types interoperate, which
    // proves the facade re-exports the same `relim-core` the
    // `lb-family` crate was compiled against.
    let step = relim::roundelim::r_step(&pi).expect("non-degenerate");
    assert!(step.problem.alphabet().len() >= pi.alphabet().len());

    // sim: generators and graph accessors through the facade path.
    let tree = sim::trees::complete_regular_tree(3, 3).expect("valid tree");
    assert!(tree.is_tree());
    assert_eq!(tree.max_degree(), 3);

    // algos: an end-to-end pipeline on a sim-built tree, checked by a
    // sim checker — all four re-exports in one data flow.
    let rep = algos::mis_deterministic(&tree, 7).expect("pipeline runs");
    assert!(sim::checkers::check_mis(&tree, &rep.in_set).is_ok());
}

#[test]
fn quickstart_example_path_works() {
    // Mirrors examples/quickstart.rs step by step, so a regression that
    // would break `cargo run --example quickstart` fails here too.
    let mis = family::family::mis(3).expect("Δ = 3 is valid");
    assert!(!mis.render().is_empty());

    let params = family::PiParams { delta: 4, a: 3, x: 1 };
    let pi = family::family::pi(&params).expect("valid parameters");
    let step = relim::roundelim::r_step(&pi).expect("Π is non-degenerate");
    assert_eq!(step.provenance.len(), step.problem.alphabet().len());

    let report = family::lemma6::verify(&params).expect("valid parameters");
    assert!(report.matches_paper());
}

#[test]
fn cli_crate_is_wired() {
    // The relim binary is exercised by its own unit tests; here we only
    // assert the workspace layout keeps the facade independent of it
    // (the facade must not depend on the CLI). This is a compile-time
    // fact; the test documents it for readers.
}
