//! Cross-crate integration tests: the full lower-bound pipeline of the
//! paper, from the round elimination engine through the problem family to
//! the final bounds.

use mis_domset_lb::family::family::{self, PiParams};
use mis_domset_lb::family::lemma8::Lemma8Machinery;
use mis_domset_lb::family::{bounds, convert, lemma6, sequence, sinkless, transforms};
use mis_domset_lb::relim::roundelim::{self, rr_step};
use mis_domset_lb::relim::{iso, zeroround};
use mis_domset_lb::sim::lcl_solver::LeafPolicy;
use mis_domset_lb::sim::{edge_coloring, trees};

/// The complete Lemma 13 argument, mechanically, for Δ = 4:
/// Π_Δ(a,x) → R̄(R(·)) → relax (Lemma 8) → Π⁺ → edge-coloring transform
/// (Lemma 9) → relax (Lemma 11) → next family member, all witnessed by
/// actual labelings on an actual tree.
#[test]
fn one_full_chain_step_with_witnesses() {
    let params = PiParams { delta: 4, a: 4, x: 0 };
    let tree = trees::complete_regular_tree(4, 3).unwrap();
    let coloring = edge_coloring::tree_edge_coloring(&tree).unwrap();

    // Lemma 6 + Lemma 8 verification at these parameters.
    assert!(lemma6::verify(&params).unwrap().matches_paper());
    let mach = Lemma8Machinery::compute(&params, &mis_domset_lb::Engine::sequential()).unwrap();
    assert!(mach.verify().matches_paper());

    // Solve R̄(R(Π)) on the tree and convert to Π⁺ (Lemma 8's 0-round map).
    let check = mach.end_to_end(&tree, 5).unwrap().expect("R̄(R(Π)) solvable on the tree");
    assert!(check.is_ok(), "{check:?}");

    // Now the Lemma 9 conversion on an actual Π⁺ solution.
    let plus = family::pi_plus(&params).unwrap();
    let inst = convert::to_lcl(&plus, LeafPolicy::SubMultiset).unwrap();
    let plus_sol = inst.solve(&tree, 8).unwrap().expect("solvable");
    let (converted, next) =
        transforms::lemma9_transform(&params, &tree, &coloring, &plus_sol).unwrap();
    assert_eq!(next, params.corollary10_step());
    let pi_next = family::pi(&next).unwrap();
    convert::check_labeling(&pi_next, &tree, &converted, convert::BoundaryPolicy::InteriorOnly)
        .unwrap();

    // And Lemma 11 down to the paper-schedule parameters.
    let scheduled = PiParams { delta: 4, a: next.a.min(1), x: next.x };
    let relaxed = transforms::lemma11_relax(&next, &scheduled, &tree, &converted).unwrap();
    let pi_sched = family::pi(&scheduled).unwrap();
    convert::check_labeling(&pi_sched, &tree, &relaxed, convert::BoundaryPolicy::InteriorOnly)
        .unwrap();
}

/// Lemma 12 holds along every chain the bound evaluators use.
#[test]
fn chains_end_in_non_zero_round_solvable_problems() {
    for delta in [4u32, 5, 6, 8] {
        let chain = sequence::paper_chain(delta, 0);
        for step in &chain.steps {
            let p = family::pi(step).unwrap();
            assert!(
                !zeroround::solvable_deterministically(&p),
                "Π_{}({},{}) unexpectedly 0-round solvable",
                delta,
                step.a,
                step.x
            );
            let report = zeroround::analyze(&p);
            assert!(report.randomized_failure_lower_bound > 0.0);
            // The paper's generalized bound: (1/(mΔ))² with m = 3 configs.
            assert!(report.randomized_failure_lower_bound >= 1.0 / f64::from(delta).powi(8));
        }
    }
}

/// The engine round-trips the MIS problem through text parsing, renaming
/// and a full R̄(R(·)) step without violating structural invariants.
#[test]
fn mis_survives_full_round_elimination_step() {
    let mis = family::mis(3).unwrap();
    let (r, rr) = rr_step(&mis).unwrap();
    // R(MIS) must contain the pointer structure: more labels than MIS.
    assert!(r.problem.alphabet().len() >= 3);
    assert!(rr.problem.alphabet().len() >= 3);
    // Every RR node configuration admits choices in R's node constraint.
    for cfg in rr.problem.node().iter() {
        let sc = rr.as_set_config(cfg);
        for set in sc.iter() {
            assert!(!set.is_empty());
        }
    }
    // The RR problem is strictly easier: it must be solvable wherever MIS
    // was; sanity-check 0-round analysis does not *gain* hardness.
    let mis_report = zeroround::analyze(&mis);
    assert!(!mis_report.deterministically_solvable);
}

/// Sinkless orientation: fixed point + the strict encoding converges to it.
#[test]
fn sinkless_orientation_anchor() {
    for delta in 3..=4 {
        let report = sinkless::check_fixed_point(delta).unwrap();
        assert!(report.is_fixed_point, "delta={delta}");
    }
    let strict = sinkless::sinkless_orientation_strict_edges(4).unwrap();
    let (_, rr) = rr_step(&strict).unwrap();
    let (reduced, _) = rr.problem.drop_unused_labels();
    assert!(iso::isomorphic(&reduced, &sinkless::sinkless_orientation(4).unwrap()));
}

/// Theorem 1 / Corollary 2 arithmetic stays consistent with the chains.
#[test]
fn bounds_consistent_with_chains() {
    for delta in [64u32, 4096, 1 << 18] {
        let t = bounds::pn_lower_bound(delta, 0);
        assert_eq!(t, sequence::paper_chain(delta, 0).length());
        let huge_n = 1e60;
        assert!((bounds::theorem1_det(huge_n, delta, 0) - f64::from(t)).abs() < 1e-9);
    }
    // Corollary 2's bound grows without limit in n.
    let (_, b_small) = bounds::corollary2_det(1e6);
    let (_, b_large) = bounds::corollary2_det(1e40);
    assert!(b_large > b_small);
}

/// The doubly-exponential growth phenomenon (§1.2) that motivates the
/// paper's constant-label family: applying R̄(R(·)) to MIS without
/// simplification grows the alphabet quickly, while the family stays at
/// ≤ 8 labels by construction.
#[test]
fn growth_contrast_between_naive_and_family() {
    let mis = family::mis(3).unwrap();
    let (r1, rr1) = rr_step(&mis).unwrap();
    let naive_labels =
        [mis.alphabet().len(), r1.problem.alphabet().len(), rr1.problem.alphabet().len()];
    assert!(naive_labels[2] > naive_labels[0], "{naive_labels:?}");

    // The family: R(Π) has exactly 8 labels at every valid parameter point.
    for a in 2..=4 {
        for x in 0..=a - 2 {
            let params = PiParams { delta: 4, a, x };
            let step = roundelim::r_step(&family::pi(&params).unwrap()).unwrap();
            assert_eq!(step.problem.alphabet().len(), 8);
        }
    }
}
