//! Cross-crate integration tests: distributed algorithms feeding the
//! lower-bound machinery, validated by the checkers on larger instances.

use mis_domset_lb::algos::{self, luby, matching, sequential};
use mis_domset_lb::family::family::{self, PiParams};
use mis_domset_lb::family::{convert, transforms};
use mis_domset_lb::sim::{checkers, edge_coloring, trees};

/// The paper's §1.1 pipeline produces valid k-ODS whose Lemma 5 image is a
/// valid `Π_Δ(a,k)` labeling — algorithms and lower-bound family agree on
/// the solution format.
#[test]
fn kods_pipeline_feeds_lemma5() {
    for (delta, k) in [(4usize, 1usize), (5, 2), (6, 3)] {
        let tree = trees::complete_regular_tree(delta, 3).unwrap();
        let rep = algos::k_outdegree_domset(&tree, k, 13).unwrap();
        checkers::check_k_outdegree_domset(&tree, &rep.in_set, &rep.orientation, k).unwrap();
        let labeling =
            transforms::lemma5_transform(&tree, &rep.in_set, &rep.orientation, k as u32).unwrap();
        let a = (delta as u32).min(k as u32 + 2);
        let pi = family::pi(&PiParams { delta: delta as u32, a, x: k as u32 }).unwrap();
        convert::check_labeling(&pi, &tree, &labeling, convert::BoundaryPolicy::InteriorOnly)
            .unwrap_or_else(|v| panic!("delta={delta}, k={k}: {v}"));
    }
}

/// MIS algorithms (deterministic sweep, Δ+1 variant, Luby) agree with the
/// checker on a diverse tree zoo.
#[test]
fn mis_algorithms_on_tree_zoo() {
    let zoo: Vec<local_sim::Graph> = vec![
        trees::path(40).unwrap(),
        trees::star(12).unwrap(),
        trees::caterpillar(8, 3).unwrap(),
        trees::complete_regular_tree(3, 4).unwrap(),
        trees::random_tree(90, 5, 3).unwrap(),
    ];
    for g in &zoo {
        let det = algos::mis_deterministic(g, 2).unwrap();
        checkers::check_mis(g, &det.in_set).unwrap();
        let plus1 = algos::domset::mis_via_delta_plus_one(g, 2).unwrap();
        checkers::check_mis(g, &plus1.in_set).unwrap();
        let rand = luby::luby_mis(g, 2).unwrap();
        checkers::check_mis(g, &rand.in_set).unwrap();
    }
}

/// The sweep phase of the k-ODS pipeline shrinks as k grows (the Δ/k shape
/// of E11), at fixed Δ.
#[test]
fn sweep_rounds_shrink_with_k() {
    let delta = 8usize;
    let tree = trees::complete_regular_tree(delta, 2).unwrap();
    let mut prev_buckets = usize::MAX;
    for k in [0usize, 1, 3, 7] {
        let rep = algos::k_outdegree_domset(&tree, k, 1).unwrap();
        checkers::check_k_outdegree_domset(&tree, &rep.in_set, &rep.orientation, k).unwrap();
        assert!(rep.buckets <= prev_buckets);
        prev_buckets = rep.buckets;
        assert!(rep.rounds.sweep <= rep.buckets + 2);
    }
}

/// Solution sizes: distributed MIS is within the greedy baselines' regime
/// (n/(Δ+1) ≤ |MIS| ≤ n/2 on trees with at least 2 nodes).
#[test]
fn mis_sizes_sane() {
    let g = trees::random_tree(150, 4, 8).unwrap();
    let det = algos::mis_deterministic(&g, 4).unwrap();
    let greedy = sequential::greedy_mis(&g, None);
    let det_size = sequential::set_size(&det.in_set);
    let greedy_size = sequential::set_size(&greedy);
    let lower = g.n() / (g.max_degree() + 1);
    assert!(det_size >= lower, "{det_size} < {lower}");
    assert!(greedy_size >= lower);
}

/// Maximal matching via edge colors, checked against the matching checker
/// and against the MIS-in-line-graph intuition (§1's b-matching remark).
#[test]
fn matching_and_edge_colorings() {
    for delta in 3..=6 {
        let g = trees::complete_regular_tree(delta, 3).unwrap();
        let col = edge_coloring::tree_edge_coloring(&g).unwrap();
        assert_eq!(col.num_colors(), delta);
        let rep = matching::maximal_matching(&g, &col, 0).unwrap();
        checkers::check_maximal_matching(&g, &rep.in_matching).unwrap();
        assert!(rep.rounds <= delta + 3);
    }
}

/// Defective/arbdefective colorings validate across a parameter grid on
/// random trees (not just regular ones).
#[test]
fn coloring_grid_on_random_trees() {
    for seed in 0..3u64 {
        let g = trees::random_tree(80, 6, seed).unwrap();
        let base = algos::linial::linial_coloring(&g, seed).unwrap();
        checkers::check_proper_coloring(&g, &base.colors).unwrap();

        for k in 1..=3usize {
            let def =
                algos::defective::defective_coloring(&g, &base.colors, base.num_colors, k, seed)
                    .unwrap();
            checkers::check_defective_coloring(&g, &def.colors, k).unwrap();
        }
        for buckets in [2usize, 3] {
            let arb = algos::arbdefective::arbdefective_coloring(
                &g,
                &base.colors,
                base.num_colors,
                buckets,
                seed,
            )
            .unwrap();
            let k = g.max_degree() / buckets;
            checkers::check_arbdefective_coloring(&g, &arb.buckets, &arb.orientation, k).unwrap();
        }
    }
}

/// k = 0 everywhere: the k-ODS pipeline degenerates to an MIS, matching
/// the paper's observation that 0-outdegree dominating sets are MIS.
#[test]
fn k_zero_is_mis() {
    let tree = trees::complete_regular_tree(4, 3).unwrap();
    let rep = algos::k_outdegree_domset(&tree, 0, 21).unwrap();
    checkers::check_mis(&tree, &rep.in_set).unwrap();
    checkers::check_k_outdegree_domset(&tree, &rep.in_set, &rep.orientation, 0).unwrap();
}
