//! Property-based tests (proptest) over random trees, parameters and
//! seeds: the paper's transforms and the engine's invariants must hold on
//! *every* generated instance.

use mis_domset_lb::algos;
use mis_domset_lb::family::family::{self, PiParams};
use mis_domset_lb::family::{convert, transforms};
use mis_domset_lb::relim::roundelim::{self, dominates};
use mis_domset_lb::relim::{parse, zeroround, Problem};
use mis_domset_lb::sim::lcl_solver::LeafPolicy;
use mis_domset_lb::sim::{checkers, edge_coloring, trees};
use proptest::prelude::*;

/// Valid (Δ, a, x) with Lemma 9's hypothesis 2x+1 ≤ a ≤ Δ.
fn lemma9_params() -> impl Strategy<Value = PiParams> {
    (3u32..=6).prop_flat_map(|delta| {
        (1u32..=delta).prop_flat_map(move |a| {
            let x_max = if a >= 1 { (a - 1) / 2 } else { 0 };
            (0..=x_max.min(delta - 1)).prop_map(move |x| PiParams { delta, a, x })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 9's transform maps solver-produced Π⁺ solutions to valid
    /// solutions of the next family member, on random regular trees.
    #[test]
    fn lemma9_transform_always_valid(params in lemma9_params(), seed in 0u64..1000) {
        // pi_plus needs x+1 <= a.
        prop_assume!(params.a > params.x);
        let plus = family::pi_plus(&params).unwrap();
        let inst = convert::to_lcl(&plus, LeafPolicy::SubMultiset).unwrap();
        let tree = trees::complete_regular_tree(params.delta as usize, 2).unwrap();
        let coloring = edge_coloring::tree_edge_coloring(&tree).unwrap();
        if let Some(sol) = inst.solve(&tree, seed).unwrap() {
            let (out, next) = transforms::lemma9_transform(&params, &tree, &coloring, &sol).unwrap();
            let target = family::pi(&next).unwrap();
            let check = convert::check_labeling(&target, &tree, &out, convert::BoundaryPolicy::InteriorOnly);
            prop_assert!(check.is_ok(), "params {params:?}, seed {seed}: {check:?}");
        }
    }

    /// Lemma 11's relaxation preserves validity for every legal parameter
    /// pair.
    #[test]
    fn lemma11_always_valid(delta in 3u32..=5, a in 1u32..=5, x in 0u32..=2,
                            da in 0u32..=2, dx in 0u32..=2, seed in 0u64..500) {
        let a = a.min(delta);
        let x = x.min(delta);
        let from = PiParams { delta, a, x };
        let to = PiParams { delta, a: a.saturating_sub(da), x: (x + dx).min(delta) };
        let p_from = family::pi(&from).unwrap();
        let inst = convert::to_lcl(&p_from, LeafPolicy::SubMultiset).unwrap();
        let tree = trees::complete_regular_tree(delta as usize, 2).unwrap();
        if let Some(sol) = inst.solve(&tree, seed).unwrap() {
            let out = transforms::lemma11_relax(&from, &to, &tree, &sol).unwrap();
            let p_to = family::pi(&to).unwrap();
            let check = convert::check_labeling(&p_to, &tree, &out, convert::BoundaryPolicy::InteriorOnly);
            prop_assert!(check.is_ok(), "{from:?} -> {to:?}, seed {seed}: {check:?}");
        }
    }

    /// The k-ODS pipeline is valid on random trees for random (k, seed),
    /// and Lemma 5 accepts its output.
    #[test]
    fn kods_pipeline_valid(n in 10usize..80, max_deg in 3usize..6, k in 0usize..4, seed in 0u64..100) {
        let tree = trees::random_tree(n, max_deg, seed).unwrap();
        let rep = algos::k_outdegree_domset(&tree, k, seed).unwrap();
        prop_assert!(checkers::check_k_outdegree_domset(&tree, &rep.in_set, &rep.orientation, k).is_ok());
        let labeling = transforms::lemma5_transform(&tree, &rep.in_set, &rep.orientation, k as u32).unwrap();
        let delta = tree.max_degree() as u32;
        let pi = family::pi(&PiParams { delta, a: delta.min(k as u32 + 1), x: k as u32 }).unwrap();
        let check = convert::check_labeling(&pi, &tree, &labeling, convert::BoundaryPolicy::InteriorOnly);
        prop_assert!(check.is_ok(), "n={n}, k={k}, seed={seed}: {check:?}");
    }

    /// Engine invariant: the `R(·)` edge side consists of mutually
    /// non-dominating configurations whose choices all satisfy the old edge
    /// constraint — for *randomly generated* problems, not just the paper's.
    #[test]
    fn r_step_universal_and_maximal(num_labels in 2u8..5, delta in 2u32..4,
                                    node_mask in 1u64..1000, edge_mask in 1u64..1000) {
        if let Some(p) = random_problem(num_labels, delta, node_mask, edge_mask) {
            let Ok(step) = roundelim::r_step(&p) else { return Ok(()) };
            let compat = p.edge_compat();
            let pairs: Vec<_> = step.problem.edge().iter().map(|c| step.as_set_config(c)).collect();
            for sc in &pairs {
                let s = sc.as_slice();
                for a1 in s[0].iter() {
                    prop_assert!(s[1].is_subset_of(compat[a1.index()]));
                }
            }
            for x in &pairs {
                for y in &pairs {
                    prop_assert!(!dominates(x, y));
                }
            }
        }
    }

    /// Differential test: the accelerated edge-side computation agrees with
    /// brute force on random problems.
    #[test]
    fn r_step_matches_bruteforce(num_labels in 2u8..5, delta in 2u32..4,
                                 node_mask in 1u64..5000, edge_mask in 1u64..5000) {
        if let Some(p) = random_problem(num_labels, delta, node_mask, edge_mask) {
            let Ok(step) = roundelim::r_step(&p) else { return Ok(()) };
            let mut fast: Vec<_> = step.problem.edge().iter().map(|c| step.as_set_config(c)).collect();
            let mut brute = roundelim::r_step_edge_bruteforce(&p).unwrap();
            fast.sort();
            brute.sort();
            prop_assert_eq!(fast, brute);
        }
    }

    /// Zero-round analysis is stable under label renaming.
    #[test]
    fn zeroround_invariant_under_renaming(num_labels in 2u8..5, delta in 2u32..4,
                                          node_mask in 1u64..2000, edge_mask in 1u64..2000) {
        if let Some(p) = random_problem(num_labels, delta, node_mask, edge_mask) {
            let solvable = zeroround::solvable_deterministically(&p);
            // Reverse the label order.
            let n = p.alphabet().len();
            let mapping: Vec<_> = (0..n).rev().map(|i| mis_domset_lb::relim::Label::new(i as u8)).collect();
            let names: Vec<String> = (0..n).map(|i| format!("L{i}")).collect();
            let alpha = mis_domset_lb::relim::Alphabet::new(&names).unwrap();
            let q = p.rename(&mapping, alpha).unwrap();
            prop_assert_eq!(solvable, zeroround::solvable_deterministically(&q));
        }
    }

    /// Parser round-trip: rendering a problem and re-parsing it yields a
    /// semantically equal problem.
    #[test]
    fn parse_display_roundtrip(num_labels in 2u8..5, delta in 2u32..4,
                               node_mask in 1u64..2000, edge_mask in 1u64..2000) {
        if let Some(p) = random_problem(num_labels, delta, node_mask, edge_mask) {
            let node_text = p.node().display(p.alphabet());
            let edge_text = p.edge().display(p.alphabet());
            let node = parse::parse_constraint(&node_text, p.alphabet()).unwrap();
            let edge = parse::parse_constraint(&edge_text, p.alphabet()).unwrap();
            prop_assert_eq!(p.node(), &node);
            prop_assert_eq!(p.edge(), &edge);
        }
    }

    /// Universal (bare PN) 0-round solvability implies gadget
    /// (edge-coloring input) solvability on arbitrary problems.
    #[test]
    fn universal_implies_gadget(num_labels in 2u8..5, delta in 2u32..4,
                                node_mask in 1u64..3000, edge_mask in 1u64..3000) {
        if let Some(p) = random_problem(num_labels, delta, node_mask, edge_mask) {
            if zeroround::solvable_pn_universal(&p) {
                prop_assert!(zeroround::solvable_deterministically(&p));
            }
        }
    }

    /// 0-round solvability never *disappears* under `R̄(R(·))`: by the
    /// speedup theorem a 0-round-solvable problem derives a
    /// 0-round-solvable problem (`max(T−1, 0) = 0`), for both the bare and
    /// the edge-coloring-input criteria.
    ///
    /// The converse is FALSE: triviality can *appear*, because after one
    /// round nodes see the edge port numbers (the orientation) that are
    /// invisible at radius 0 — exactly the observation in the paper's
    /// Lemma 12 proof ("they do not even see the port numbering of the
    /// edges"). E.g. the 3-label Δ=2 problem with `N = {01, 02, 12, 22}`,
    /// `E = {02, 11}` is 0-round unsolvable yet its derivative is trivial.
    #[test]
    fn triviality_never_disappears_under_rr(num_labels in 2u8..4, delta in 2u32..4,
                                            node_mask in 1u64..2000, edge_mask in 1u64..2000) {
        if let Some(p) = random_problem(num_labels, delta, node_mask, edge_mask) {
            let Ok((_, rr)) = roundelim::rr_step(&p) else { return Ok(()) };
            let (q, _) = rr.problem.drop_unused_labels();
            if zeroround::solvable_pn_universal(&p) {
                prop_assert!(zeroround::solvable_pn_universal(&q),
                    "universal triviality disappeared under rr");
            }
            if zeroround::solvable_deterministically(&p) {
                prop_assert!(zeroround::solvable_deterministically(&q),
                    "gadget triviality disappeared under rr");
            }
        }
    }

    /// Solvability given a proper c-coloring is monotone decreasing in c,
    /// and every returned witness is genuinely cross-compatible.
    #[test]
    fn coloring_witness_monotone_and_sound(num_labels in 2u8..5, delta in 2u32..4,
                                           node_mask in 1u64..3000, edge_mask in 1u64..3000) {
        if let Some(p) = random_problem(num_labels, delta, node_mask, edge_mask) {
            let mut prev = true;
            for c in 2usize..=5 {
                let w = zeroround::coloring_witness(&p, c);
                if w.is_some() {
                    prop_assert!(prev, "solvable at {c} colors but not at {}", c - 1);
                }
                prev = w.is_some();
                if let Some(ws) = w {
                    prop_assert_eq!(ws.len(), c);
                    let compat = p.edge_compat();
                    for (i, ci) in ws.iter().enumerate() {
                        prop_assert!(p.node().contains(ci));
                        for (j, cj) in ws.iter().enumerate() {
                            if i == j { continue; }
                            for x in ci.iter() {
                                for y in cj.iter() {
                                    prop_assert!(compat[x.index()].contains(y),
                                        "colors {i},{j}: {x:?} vs {y:?} not compatible");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Label merges are relaxations: the image of every configuration of
    /// the original problem under the merge map is allowed by the merged
    /// problem.
    #[test]
    fn merge_is_relaxation(num_labels in 2u8..5, delta in 2u32..4,
                           node_mask in 1u64..3000, edge_mask in 1u64..3000,
                           from in 0u8..5, to in 0u8..5) {
        use mis_domset_lb::relim::{simplify, Label};
        if let Some(p) = random_problem(num_labels, delta, node_mask, edge_mask) {
            // Unused alphabet labels would vanish after the merge's
            // drop-unused pass and break the name lookup below.
            let (p, _) = p.drop_unused_labels();
            prop_assume!(p.alphabet().len() >= 2);
            let n = p.alphabet().len() as u8;
            let (from, to) = (from % n, to % n);
            prop_assume!(from != to);
            let from_name = p.alphabet().name(Label::new(from)).to_owned();
            let to_name = p.alphabet().name(Label::new(to)).to_owned();
            let merged = simplify::merge_labels(&p, Label::new(from), Label::new(to)).unwrap();
            // Build the composite map old label -> merged label by name.
            let map: Vec<Label> = (0..n).map(|i| {
                let name = if i == from { &to_name } else { p.alphabet().name(Label::new(i)) };
                let _ = &from_name;
                merged.alphabet().label(name).unwrap()
            }).collect();
            for cfg in p.node().iter() {
                prop_assert!(merged.node().contains(&cfg.map_labels(&map)));
            }
            for cfg in p.edge().iter() {
                prop_assert!(merged.edge().contains(&cfg.map_labels(&map)));
            }
        }
    }

    /// Every automatic lower-bound outcome carries a replayable
    /// certificate, whatever the stopping reason.
    #[test]
    fn autolb_certificates_replay(num_labels in 2u8..4, delta in 2u32..4,
                                  node_mask in 1u64..2000, edge_mask in 1u64..2000) {
        use mis_domset_lb::relim::autolb;
        if let Some(p) = random_problem(num_labels, delta, node_mask, edge_mask) {
            let opts = autolb::AutoLbOptions { max_steps: 2, label_budget: 5, ..Default::default() };
            let outcome = mis_domset_lb::Engine::sequential().auto_lower_bound(&p, &opts);
            let replay = autolb::verify_chain(&outcome);
            prop_assert!(replay.is_ok(), "{:?} -> {:?}", outcome.stopped, replay.err());
            prop_assert_eq!(replay.unwrap(), outcome.certified_rounds);
        }
    }

    /// The biregular operators agree with the specialized (Δ, 2) pipeline
    /// on arbitrary problems — the generic engine is a strict superset.
    #[test]
    fn biregular_full_step_matches_rr(num_labels in 2u8..4, delta in 2u32..4,
                                      node_mask in 1u64..2000, edge_mask in 1u64..2000) {
        use mis_domset_lb::relim::{biregular, iso};
        if let Some(p) = random_problem(num_labels, delta, node_mask, edge_mask) {
            let rr = roundelim::rr_step(&p);
            let bi = biregular::full_step(&biregular::BiregularProblem::from_problem(&p));
            match (rr, bi) {
                (Ok((_, rr)), Ok((_, bi))) => {
                    let q = bi.problem.to_problem().unwrap();
                    prop_assert!(iso::isomorphic(&q, &rr.problem));
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}",
                                       a.map(|_| ()), b.map(|_| ())),
            }
        }
    }

    /// Every automatic upper-bound outcome carries a replayable
    /// certificate, and claimed bounds agree with the replay.
    #[test]
    fn autoub_certificates_replay(num_labels in 2u8..4, delta in 2u32..4,
                                  node_mask in 1u64..2000, edge_mask in 1u64..2000,
                                  colors in 2usize..4) {
        use mis_domset_lb::relim::autoub;
        if let Some(p) = random_problem(num_labels, delta, node_mask, edge_mask) {
            let opts = autoub::AutoUbOptions {
                max_steps: 2,
                label_budget: 8,
                coloring: Some(colors),
            };
            let outcome = mis_domset_lb::Engine::sequential().auto_upper_bound(&p, &opts);
            let replay = autoub::verify_ub(&outcome);
            prop_assert!(replay.is_ok(), "{:?}", replay.err());
            prop_assert_eq!(replay.unwrap(), outcome.bound.map(|b| b.rounds));
        }
    }
}

/// Builds a small random problem by selecting node/edge configurations via
/// bitmasks over the full enumeration; `None` when a mask selects nothing.
fn random_problem(num_labels: u8, delta: u32, node_mask: u64, edge_mask: u64) -> Option<Problem> {
    use mis_domset_lb::relim::{Alphabet, Config, Constraint, Label, LabelSet};
    let names: Vec<String> = (0..num_labels).map(|i| format!("L{i}")).collect();
    let alphabet = Alphabet::new(&names).ok()?;
    let full = LabelSet::full(num_labels as usize);
    let all_node: Vec<Config> = multisets(full, delta);
    let all_edge: Vec<Config> = multisets(full, 2);
    let node: Vec<Config> = all_node
        .into_iter()
        .enumerate()
        .filter(|(i, _)| node_mask & (1 << (i % 63)) != 0)
        .map(|(_, c)| c)
        .collect();
    let edge: Vec<Config> = all_edge
        .into_iter()
        .enumerate()
        .filter(|(i, _)| edge_mask & (1 << (i % 63)) != 0)
        .map(|(_, c)| c)
        .collect();
    if node.is_empty() || edge.is_empty() {
        return None;
    }
    let node = Constraint::from_configs(node).ok()?;
    let edge = Constraint::from_configs(edge).ok()?;
    let _ = Label::new(0);
    Problem::new(alphabet, node, edge).ok()
}

fn multisets(set: mis_domset_lb::relim::LabelSet, k: u32) -> Vec<mis_domset_lb::relim::Config> {
    use mis_domset_lb::relim::{Config, Label};
    let labels: Vec<Label> = set.iter().collect();
    let mut out = Vec::new();
    let mut cur: Vec<Label> = Vec::new();
    fn rec(labels: &[Label], start: usize, k: u32, cur: &mut Vec<Label>, out: &mut Vec<Config>) {
        if k == 0 {
            out.push(Config::new(cur.clone()));
            return;
        }
        for (i, &l) in labels.iter().enumerate().skip(start) {
            cur.push(l);
            rec(labels, i, k - 1, cur, out);
            cur.pop();
        }
    }
    rec(&labels, 0, k, &mut cur, &mut out);
    out
}
