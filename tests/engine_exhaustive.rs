//! Exhaustive differential validation of the round elimination engine on
//! the space of ALL small problems.
//!
//! For 2 labels and Δ = 2 or 3 the space of problems is small enough to
//! enumerate completely: every non-empty set of node configurations × every
//! non-empty set of edge configurations. On each problem, the accelerated
//! engine (Galois fixed points + right-closedness pruning) must agree with
//! brute force, and structural invariants must hold.

use mis_domset_lb::relim::roundelim::{
    self, dominates, r_step_edge_bruteforce, rbar_step_node_bruteforce,
};
use mis_domset_lb::relim::{Alphabet, Config, Constraint, Label, LabelSet, Problem};

fn multisets(num_labels: u8, k: u32) -> Vec<Config> {
    let labels: Vec<Label> = (0..num_labels).map(Label::new).collect();
    let mut out = Vec::new();
    let mut cur: Vec<Label> = Vec::new();
    fn rec(labels: &[Label], start: usize, k: u32, cur: &mut Vec<Label>, out: &mut Vec<Config>) {
        if k == 0 {
            out.push(Config::new(cur.clone()));
            return;
        }
        for (i, &l) in labels.iter().enumerate().skip(start) {
            cur.push(l);
            rec(labels, i, k - 1, cur, out);
            cur.pop();
        }
    }
    rec(&labels, 0, k, &mut cur, &mut out);
    out
}

/// Enumerates every problem with `num_labels` labels and degree `delta`
/// (all non-empty subsets of node and edge configuration spaces).
fn all_problems(num_labels: u8, delta: u32) -> Vec<Problem> {
    let names: Vec<String> = (0..num_labels).map(|i| format!("L{i}")).collect();
    let node_space = multisets(num_labels, delta);
    let edge_space = multisets(num_labels, 2);
    let mut out = Vec::new();
    for node_mask in 1u32..(1 << node_space.len()) {
        let node: Vec<Config> = node_space
            .iter()
            .enumerate()
            .filter(|(i, _)| node_mask & (1 << i) != 0)
            .map(|(_, c)| c.clone())
            .collect();
        for edge_mask in 1u32..(1 << edge_space.len()) {
            let edge: Vec<Config> = edge_space
                .iter()
                .enumerate()
                .filter(|(i, _)| edge_mask & (1 << i) != 0)
                .map(|(_, c)| c.clone())
                .collect();
            let alphabet = Alphabet::new(&names).expect("valid");
            let node = Constraint::from_configs(node.clone()).expect("non-empty");
            let edge = Constraint::from_configs(edge).expect("non-empty");
            out.push(Problem::new(alphabet, node, edge).expect("valid"));
        }
    }
    out
}

#[test]
fn exhaustive_two_labels_delta2() {
    let problems = all_problems(2, 2);
    // 2-label Δ=2: 3 node multisets, 3 edge multisets -> 7 × 7 = 49 problems.
    assert_eq!(problems.len(), 49);
    run_differential(&problems);
}

#[test]
fn exhaustive_two_labels_delta3() {
    let problems = all_problems(2, 3);
    // 4 node multisets, 3 edge multisets -> 15 × 7 = 105 problems.
    assert_eq!(problems.len(), 105);
    run_differential(&problems);
}

#[test]
fn exhaustive_three_labels_delta2_sample() {
    // 3 labels, Δ=2: 6 node multisets, 6 edge multisets -> 63 × 63 = 3969.
    let problems = all_problems(3, 2);
    assert_eq!(problems.len(), 3969);
    // Full differential on every 7th problem (567 problems) keeps tier-1
    // fast while covering the space systematically; the full sweep is the
    // `#[ignore]`d tier-2 test below.
    let sample: Vec<_> = problems.into_iter().step_by(7).collect();
    run_differential(&sample);
}

#[test]
#[cfg_attr(
    not(feature = "exhaustive"),
    ignore = "tier-2 full sweep (~7x the sampled test); run with --ignored or --features exhaustive"
)]
fn exhaustive_three_labels_delta2_full() {
    let problems = all_problems(3, 2);
    assert_eq!(problems.len(), 3969);
    run_differential(&problems);
}

#[test]
#[cfg_attr(
    not(feature = "exhaustive"),
    ignore = "tier-2 full sweep of the 3-label Δ=3 space; run with --ignored in release mode, \
              or --features exhaustive"
)]
fn exhaustive_three_labels_delta3_sampled_wide() {
    // 3 labels, Δ=3: 10 node multisets, 6 edge multisets -> 1023 × 63.
    // Even sampled this is tier-2 territory; every 97th problem gives a
    // systematic ~660-problem slice of a space the tier-1 suite never
    // touches at all.
    let problems = all_problems(3, 3);
    assert_eq!(problems.len(), 1023 * 63);
    let sample: Vec<_> = problems.into_iter().step_by(97).collect();
    run_differential(&sample);
}

fn run_differential(problems: &[Problem]) {
    let mut degenerate = 0usize;
    for p in problems {
        // --- R step: fast vs brute force on the universal edge side. ---
        match roundelim::r_step(p) {
            Ok(step) => {
                let mut fast: Vec<_> =
                    step.problem.edge().iter().map(|c| step.as_set_config(c)).collect();
                let mut brute = r_step_edge_bruteforce(p).expect("small alphabet");
                fast.sort();
                brute.sort();
                assert_eq!(fast, brute, "R-step mismatch on {p}");

                // Mutual non-dominance.
                for x in &fast {
                    for y in &fast {
                        assert!(!dominates(x, y), "dominated pair in R({p})");
                    }
                }

                // --- R̄ step on the derived problem, fast vs brute. ---
                if step.problem.alphabet().len() <= 8 {
                    match roundelim::rbar_step(&step.problem) {
                        Ok(rr) => {
                            let mut fast_n: Vec<_> =
                                rr.problem.node().iter().map(|c| rr.as_set_config(c)).collect();
                            let mut brute_n =
                                rbar_step_node_bruteforce(&step.problem).expect("small alphabet");
                            fast_n.sort();
                            brute_n.sort();
                            assert_eq!(fast_n, brute_n, "R̄-step mismatch after {p}");
                        }
                        Err(_) => degenerate += 1,
                    }
                }
            }
            Err(_) => degenerate += 1,
        }
    }
    // Degenerate problems exist but must be a minority of the space.
    assert!(degenerate * 2 < problems.len(), "{degenerate} of {} degenerate", problems.len());
}

/// On every small problem, 0-round solvability must agree between the
/// direct analysis and explicit enumeration of all deterministic 0-round
/// algorithms on the gadget (functions ports → labels with configuration
/// in N, same label seen on both sides of each edge).
#[test]
fn zeroround_exhaustive_cross_check() {
    use mis_domset_lb::relim::zeroround;
    for p in all_problems(2, 3) {
        let fast = zeroround::solvable_deterministically(&p);
        // Brute force: some node configuration all of whose labels are
        // self-compatible, i.e. assignment f with multiset(f) ∈ N and
        // (f(i), f(i)) ∈ E for all ports i.
        let brute = p
            .node()
            .iter()
            .any(|cfg| cfg.iter().all(|l| p.edge().contains(&Config::new(vec![l, l]))));
        assert_eq!(fast, brute, "0-round mismatch on {p}");
        let _ = LabelSet::EMPTY;
    }
}
