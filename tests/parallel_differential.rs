//! Differential property tests for the round-elimination `Engine`
//! sessions: at thread counts 1, 2 and 8, with session memoization on and
//! off, every `Engine` method must produce **byte-identical** output to
//! the sequential reference — the determinism invariant the work-stealing
//! pool promises (results are collected and canonically re-sorted, so the
//! schedule can never leak into the output) composed with the cache
//! invariant (a sub-multiset index served from the session cache is a
//! pure function of the constraint). The references are the session-free
//! sequential paths (`rr_step`, `dominance_filter_reference`,
//! `iterate_rr_unmemoized`) — the deprecated pool-taking wrappers this
//! suite used to exercise served their one-release window and are gone.
//!
//! Problems are drawn from the full space of small LCLs (random non-empty
//! subsets of the node/edge configuration spaces), seeded via the standard
//! `PROPTEST_SEED` plumbing. The adversarial dominance-filter inputs
//! (all-equal cardinality signatures, singleton buckets, empty inputs,
//! empty member sets, duplicates) are pinned deterministically below the
//! property tests.

use mis_domset_lb::pool::Pool;
use mis_domset_lb::relim::autolb::{self, AutoLbOptions};
use mis_domset_lb::relim::iterate::{iterate_rr_unmemoized, IterationOutcome};
use mis_domset_lb::relim::roundelim::{dominance_filter, dominance_filter_reference, rr_step};
use mis_domset_lb::relim::{Alphabet, Config, Constraint, Label, LabelSet, Problem, SetConfig};
use mis_domset_lb::Engine;
use proptest::prelude::*;

/// The engine configurations every differential below sweeps: thread
/// counts 1/2/8, memoization on and off.
fn engine_grid() -> Vec<Engine> {
    let mut engines = Vec::new();
    for threads in [1usize, 2, 8] {
        for memoize in [true, false] {
            engines.push(Engine::builder().threads(threads).memoize(memoize).build());
        }
    }
    engines
}

/// All multisets of `k` labels over `num_labels` labels.
fn multisets(num_labels: u8, k: u32) -> Vec<Config> {
    let labels: Vec<Label> = (0..num_labels).map(Label::new).collect();
    let mut out = Vec::new();
    let mut cur: Vec<Label> = Vec::new();
    fn rec(labels: &[Label], start: usize, k: u32, cur: &mut Vec<Label>, out: &mut Vec<Config>) {
        if k == 0 {
            out.push(Config::new(cur.clone()));
            return;
        }
        for (i, &l) in labels.iter().enumerate().skip(start) {
            cur.push(l);
            rec(labels, i, k - 1, cur, out);
            cur.pop();
        }
    }
    rec(&labels, 0, k, &mut cur, &mut out);
    out
}

/// Random small problems: any non-empty subset of the node configuration
/// space × any non-empty subset of the edge configuration space.
fn problems() -> impl Strategy<Value = Problem> {
    ((2u8..=3), (2u32..=3)).prop_flat_map(|(num_labels, delta)| {
        let node_space = multisets(num_labels, delta);
        let edge_space = multisets(num_labels, 2);
        let node_max = (1u32 << node_space.len()) - 1;
        let edge_max = (1u32 << edge_space.len()) - 1;
        ((1u32..=node_max), (1u32..=edge_max)).prop_map(move |(node_mask, edge_mask)| {
            let names: Vec<String> = (0..num_labels).map(|i| format!("L{i}")).collect();
            let pick = |space: &[Config], mask: u32| -> Vec<Config> {
                space
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, c)| c.clone())
                    .collect()
            };
            Problem::new(
                Alphabet::new(&names).expect("valid"),
                Constraint::from_configs(pick(&node_space, node_mask)).expect("non-empty"),
                Constraint::from_configs(pick(&edge_space, edge_mask)).expect("non-empty"),
            )
            .expect("valid")
        })
    })
}

/// Canonical rendering of an `rr_step` outcome, errors included (a
/// parallel run must reproduce even the failure byte-for-byte).
fn render_rr(
    outcome: &mis_domset_lb::relim::error::Result<(
        mis_domset_lb::relim::Step,
        mis_domset_lb::relim::Step,
    )>,
) -> String {
    match outcome {
        Ok((r, rr)) => format!(
            "R: {}\nprov: {:?}\nRR: {}\nprov: {:?}",
            r.problem.render(),
            r.provenance,
            rr.problem.render(),
            rr.provenance
        ),
        Err(e) => format!("error: {e:?}"),
    }
}

/// Random set-configurations of one degree — input for the dominance
/// filter differential.
fn set_configs() -> impl Strategy<Value = Vec<SetConfig>> {
    ((2u32..=4), (0u64..u64::MAX)).prop_map(|(degree, seed)| {
        // Derive a deterministic pseudo-random batch from the seed: enough
        // structure for domination chains, cheap enough for many cases.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..60)
            .map(|_| {
                SetConfig::new(
                    (0..degree).map(|_| LabelSet::from_bits((next() % 31 + 1) as u32)).collect(),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Engine::rr_step` — at threads 1/2/8, memo on/off, warm or cold
    /// cache — is byte-identical to the sequential `rr_step`, including
    /// on degenerate problems where every path must fail with the same
    /// error.
    #[test]
    fn rr_step_identical_across_engines(p in problems()) {
        let sequential = render_rr(&rr_step(&p));
        for engine in engine_grid() {
            let got = render_rr(&engine.rr_step(&p));
            prop_assert_eq!(&got, &sequential,
                            "engine threads = {}, memo = {}", engine.threads(), engine.memoizing());
            // Warm cache: a repeated step must not change a byte.
            let warm = render_rr(&engine.rr_step(&p));
            prop_assert_eq!(&warm, &sequential,
                            "warm cache, threads = {}", engine.threads());
        }
    }

    /// The bucketed, sharded dominance filter agrees with the seed's
    /// quadratic reference at every thread count.
    #[test]
    fn dominance_filter_identical_across_thread_counts(configs in set_configs()) {
        let reference = dominance_filter_reference(configs.clone());
        for engine in engine_grid() {
            let filtered = engine.dominance_filter(configs.clone());
            prop_assert_eq!(&filtered, &reference, "threads = {}", engine.threads());
        }
    }

    /// End-to-end `Engine::iterate_with_limits` (a full fixed-point
    /// search, not a single step) is byte-identical across threads 1/2/8
    /// and memoization on/off — and the session-free
    /// `iterate_rr_unmemoized` reference agrees exactly with it at every
    /// thread count.
    #[test]
    fn iterate_identical_across_engines(p in problems()) {
        let reference =
            render_outcome(&iterate_rr_unmemoized(&p, 4, 12, &Pool::sequential()));
        for engine in engine_grid() {
            let session = render_outcome(&engine.iterate_with_limits(&p, 4, 12));
            prop_assert_eq!(&session, &reference,
                            "engine threads = {}, memo = {}", engine.threads(), engine.memoizing());
        }
        for threads in [1usize, 2, 8] {
            let unmemoized =
                render_outcome(&iterate_rr_unmemoized(&p, 4, 12, &Pool::new(threads)));
            prop_assert_eq!(&unmemoized, &reference, "memo off, threads = {}", threads);
        }
    }

    /// The automatic lower-bound search through a session — any width,
    /// memo on/off, even a session whose cache was warmed by an unrelated
    /// call — matches the cold sequential session outcome exactly.
    #[test]
    fn autolb_identical_across_engines(p in problems()) {
        let opts = AutoLbOptions { max_steps: 2, label_budget: 5, ..Default::default() };
        let render = |o: &autolb::AutoLbOutcome| {
            let chain: Vec<String> = o.chain().map(Problem::render).collect();
            format!("{:?} {} {}", o.stopped, o.certified_rounds, chain.join("|"))
        };
        let reference = render(&Engine::sequential().auto_lower_bound(&p, &opts));
        for engine in engine_grid() {
            prop_assert_eq!(&render(&engine.auto_lower_bound(&p, &opts)), &reference,
                            "engine threads = {}, memo = {}", engine.threads(), engine.memoizing());
            // Warm the cache with an unrelated probe, then search again:
            // still byte-identical (hits return the same bytes).
            engine.iterate_with_limits(&p, 1, 12);
            prop_assert_eq!(&render(&engine.auto_lower_bound(&p, &opts)), &reference,
                            "warmed cache, threads = {}", engine.threads());
        }
    }
}

/// Canonical rendering of a full iteration outcome: per-step stats, stop
/// reason, and every intermediate problem's exact text.
fn render_outcome(o: &IterationOutcome) -> String {
    let rendered: Vec<String> = o.problems.iter().map(Problem::render).collect();
    format!("{:?}\n{:?}\n{}", o.stats, o.stopped, rendered.join("\n---\n"))
}

/// `Engine::dominance_filter` must match the seed's quadratic reference
/// on `configs` at thread counts 1, 2 and 8 (and via the sequential
/// entry point).
fn assert_matches_reference(configs: Vec<SetConfig>, what: &str) {
    let reference = dominance_filter_reference(configs.clone());
    assert_eq!(dominance_filter(configs.clone()), reference, "{what}: sequential entry point");
    for threads in [1usize, 2, 8] {
        assert_eq!(
            Engine::builder().threads(threads).build().dominance_filter(configs.clone()),
            reference,
            "{what}: threads = {threads}"
        );
    }
}

fn set(bits: u32) -> LabelSet {
    LabelSet::from_bits(bits)
}

/// All-equal cardinality signatures: every configuration has the sorted
/// cardinality vector `[2, 2]`, so the whole input lands in **one**
/// bucket and the signature pre-check can prune nothing — domination is
/// decided by support subsets and the matching alone.
#[test]
fn dominance_adversarial_all_equal_signatures() {
    let two_element_sets: Vec<LabelSet> =
        [0b0011u32, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100].map(set).to_vec();
    let mut configs = Vec::new();
    for &a in &two_element_sets {
        for &b in &two_element_sets {
            configs.push(SetConfig::new(vec![a, b]));
        }
    }
    assert_matches_reference(configs, "all-equal signatures");
}

/// Singleton buckets: pairwise distinct cardinality signatures (a strict
/// chain of nested sets), so every bucket holds exactly one configuration
/// and all domination happens *across* buckets.
#[test]
fn dominance_adversarial_singleton_buckets() {
    let chain: Vec<SetConfig> = (1..=6u32)
        .map(|k| {
            let grown = set((1 << k) - 1); // {0}, {0,1}, ..., {0..5}
            SetConfig::new(vec![set(1), grown])
        })
        .collect();
    assert_matches_reference(chain, "singleton buckets");
}

/// Empty configuration sets, in both senses: an empty *input* (no
/// configurations at all) and configurations whose member sets are
/// `LabelSet::EMPTY` (cardinality-0 positions — every set dominates
/// them, so only the all-empty equality case survives inside a bucket).
#[test]
fn dominance_adversarial_empty_inputs_and_empty_sets() {
    assert_matches_reference(Vec::new(), "empty input");

    let empty = LabelSet::EMPTY;
    let configs = vec![
        SetConfig::new(vec![empty, empty]),
        SetConfig::new(vec![empty, set(0b1)]),
        SetConfig::new(vec![set(0b1), set(0b11)]),
        SetConfig::new(vec![empty, empty]),
        SetConfig::new(vec![set(0b11), set(0b11)]),
    ];
    assert_matches_reference(configs, "empty member sets");
}

/// Exact duplicates never dominate each other (domination is strict), so
/// every copy must survive — a classic fast-path trap.
#[test]
fn dominance_adversarial_duplicates_survive_together() {
    let dup = SetConfig::new(vec![set(0b01), set(0b01)]);
    let bigger = SetConfig::new(vec![set(0b11), set(0b01)]);
    let configs = vec![dup.clone(), dup.clone(), dup.clone(), bigger.clone()];
    let reference = dominance_filter_reference(configs.clone());
    // The duplicates are all dominated by `bigger`; `bigger` survives.
    assert_eq!(reference, vec![bigger.clone()]);
    assert_matches_reference(configs, "duplicates with a dominator");

    // Without a dominator, all copies survive together.
    let configs = vec![dup.clone(), dup.clone(), dup];
    let reference = dominance_filter_reference(configs.clone());
    assert_eq!(reference.len(), 3);
    assert_matches_reference(configs, "duplicates alone");
}

/// A single configuration short-circuits every path; degree-0
/// configurations (empty position lists) exercise the trivial-matching
/// corner.
#[test]
fn dominance_adversarial_degenerate_shapes() {
    let lone = vec![SetConfig::new(vec![set(0b1), set(0b10)])];
    assert_matches_reference(lone, "single configuration");

    let degree_zero = vec![SetConfig::new(Vec::new()), SetConfig::new(Vec::new())];
    assert_matches_reference(degree_zero, "degree-0 configurations");
}
