//! Differential property tests for the parallel round-elimination engine:
//! at thread counts 1, 2 and 8, every `*_with` entry point must produce
//! **byte-identical** output to the sequential engine — the determinism
//! invariant the work-stealing pool promises (results are collected and
//! canonically re-sorted, so the schedule can never leak into the output).
//!
//! Problems are drawn from the full space of small LCLs (random non-empty
//! subsets of the node/edge configuration spaces), seeded via the standard
//! `PROPTEST_SEED` plumbing.

use mis_domset_lb::pool::Pool;
use mis_domset_lb::relim::roundelim::{
    dominance_filter_reference, dominance_filter_with, rr_step, rr_step_with,
};
use mis_domset_lb::relim::{Alphabet, Config, Constraint, Label, LabelSet, Problem, SetConfig};
use proptest::prelude::*;

/// All multisets of `k` labels over `num_labels` labels.
fn multisets(num_labels: u8, k: u32) -> Vec<Config> {
    let labels: Vec<Label> = (0..num_labels).map(Label::new).collect();
    let mut out = Vec::new();
    let mut cur: Vec<Label> = Vec::new();
    fn rec(labels: &[Label], start: usize, k: u32, cur: &mut Vec<Label>, out: &mut Vec<Config>) {
        if k == 0 {
            out.push(Config::new(cur.clone()));
            return;
        }
        for (i, &l) in labels.iter().enumerate().skip(start) {
            cur.push(l);
            rec(labels, i, k - 1, cur, out);
            cur.pop();
        }
    }
    rec(&labels, 0, k, &mut cur, &mut out);
    out
}

/// Random small problems: any non-empty subset of the node configuration
/// space × any non-empty subset of the edge configuration space.
fn problems() -> impl Strategy<Value = Problem> {
    ((2u8..=3), (2u32..=3)).prop_flat_map(|(num_labels, delta)| {
        let node_space = multisets(num_labels, delta);
        let edge_space = multisets(num_labels, 2);
        let node_max = (1u32 << node_space.len()) - 1;
        let edge_max = (1u32 << edge_space.len()) - 1;
        ((1u32..=node_max), (1u32..=edge_max)).prop_map(move |(node_mask, edge_mask)| {
            let names: Vec<String> = (0..num_labels).map(|i| format!("L{i}")).collect();
            let pick = |space: &[Config], mask: u32| -> Vec<Config> {
                space
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, c)| c.clone())
                    .collect()
            };
            Problem::new(
                Alphabet::new(&names).expect("valid"),
                Constraint::from_configs(pick(&node_space, node_mask)).expect("non-empty"),
                Constraint::from_configs(pick(&edge_space, edge_mask)).expect("non-empty"),
            )
            .expect("valid")
        })
    })
}

/// Canonical rendering of an `rr_step` outcome, errors included (a
/// parallel run must reproduce even the failure byte-for-byte).
fn render_rr(
    outcome: &mis_domset_lb::relim::error::Result<(
        mis_domset_lb::relim::Step,
        mis_domset_lb::relim::Step,
    )>,
) -> String {
    match outcome {
        Ok((r, rr)) => format!(
            "R: {}\nprov: {:?}\nRR: {}\nprov: {:?}",
            r.problem.render(),
            r.provenance,
            rr.problem.render(),
            rr.provenance
        ),
        Err(e) => format!("error: {e:?}"),
    }
}

/// Random set-configurations of one degree — input for the dominance
/// filter differential.
fn set_configs() -> impl Strategy<Value = Vec<SetConfig>> {
    ((2u32..=4), (0u64..u64::MAX)).prop_map(|(degree, seed)| {
        // Derive a deterministic pseudo-random batch from the seed: enough
        // structure for domination chains, cheap enough for many cases.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..60)
            .map(|_| {
                SetConfig::new(
                    (0..degree).map(|_| LabelSet::from_bits((next() % 31 + 1) as u32)).collect(),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `rr_step_with` is byte-identical to `rr_step` at thread counts
    /// 1, 2 and 8 — including on degenerate problems where both must
    /// fail with the same error.
    #[test]
    fn rr_step_identical_across_thread_counts(p in problems()) {
        let sequential = render_rr(&rr_step(&p));
        for threads in [1usize, 2, 8] {
            let parallel = render_rr(&rr_step_with(&p, &Pool::new(threads)));
            prop_assert_eq!(&parallel, &sequential, "threads = {}", threads);
        }
    }

    /// The bucketed, sharded dominance filter agrees with the seed's
    /// quadratic reference at every thread count.
    #[test]
    fn dominance_filter_identical_across_thread_counts(configs in set_configs()) {
        let reference = dominance_filter_reference(configs.clone());
        for threads in [1usize, 2, 8] {
            let filtered = dominance_filter_with(configs.clone(), &Pool::new(threads));
            prop_assert_eq!(&filtered, &reference, "threads = {}", threads);
        }
    }
}
