//! Session-level behavior of `relim_core::engine::Engine`: one pool
//! handle and one `SubIndexCache` owned by the session and shared across
//! *all* of its calls — the property the stateless free-function surface
//! could not provide. The assertions here are the acceptance criteria of
//! the session API: `autolb` demonstrably reuses one cache across the
//! merge search (hit counters observed through `EngineReport`), repeat
//! searches rebuild nothing, and none of it changes a single output byte.

use mis_domset_lb::family::family;
use mis_domset_lb::relim::autolb::AutoLbOptions;
use mis_domset_lb::relim::autoub::AutoUbOptions;
use mis_domset_lb::relim::Problem;
use mis_domset_lb::Engine;

fn sinkless() -> Problem {
    Problem::from_text("O I I", "[O I] I").unwrap()
}

/// The ROADMAP item this API closed: the `autolb` merge search runs
/// against the session's one `SubIndexCache`. An `iterate` probe warms
/// the cache; the full lower-bound search that follows is then served
/// entirely from it (hits observed, zero new builds), and a repeated
/// search stays hit-only — with byte-identical outcomes throughout.
#[test]
fn autolb_merge_search_reuses_the_session_cache() {
    let engine = Engine::sequential();
    let so = sinkless();
    engine.iterate_with_limits(&so, 1, 20);
    let warmed = engine.report();
    assert!(warmed.cache_misses >= 1, "the probe must have built an index");

    let first = engine.auto_lower_bound(&so, &AutoLbOptions::default());
    assert!(first.unbounded());
    let after_first = engine.report();
    assert!(
        after_first.cache_hits > warmed.cache_hits,
        "the merge search must be served from the session cache: {after_first:?}"
    );
    assert_eq!(
        after_first.cache_misses, warmed.cache_misses,
        "the merge search must not rebuild any index: {after_first:?}"
    );

    let second = engine.auto_lower_bound(&so, &AutoLbOptions::default());
    let after_second = engine.report();
    assert_eq!(after_second.cache_misses, after_first.cache_misses, "repeat run rebuilt an index");
    assert!(after_second.cache_hits > after_first.cache_hits);

    // Cache traffic never leaks into results.
    let render = |o: &mis_domset_lb::relim::autolb::AutoLbOutcome| {
        let chain: Vec<String> = o.chain().map(Problem::render).collect();
        format!("{:?} {} {}", o.stopped, o.certified_rounds, chain.join("|"))
    };
    assert_eq!(render(&first), render(&second));
    let cold = Engine::sequential().auto_lower_bound(&so, &AutoLbOptions::default());
    assert_eq!(render(&first), render(&cold), "session reuse changed the outcome");
}

/// Within one `autoub` chain on a fixed point the same `R(Π)` node
/// constraint repeats byte-for-byte: steps after the first must hit.
#[test]
fn autoub_chain_is_served_from_cache_within_one_search() {
    let engine = Engine::sequential();
    let opts = AutoUbOptions { max_steps: 3, label_budget: 20, coloring: None };
    let outcome = engine.auto_upper_bound(&sinkless(), &opts);
    assert!(outcome.bound.is_none(), "sinkless orientation never becomes trivial");
    let report = engine.report();
    assert_eq!((report.cache_hits, report.cache_misses), (2, 1), "{report:?}");
}

/// The memoization toggle is observable (misses only) and harmless
/// (outputs identical); the capacity knob bounds the held entries.
#[test]
fn builder_knobs_are_observable_and_output_neutral() {
    let mis = family::mis(3).unwrap();
    let memo_on = Engine::builder().threads(1).cache_capacity(2).build();
    let memo_off = Engine::builder().threads(1).memoize(false).build();
    let a = memo_on.iterate_with_limits(&mis, 3, 20);
    let b = memo_off.iterate_with_limits(&mis, 3, 20);
    assert_eq!(format!("{:?}{:?}", a.stats, a.stopped), format!("{:?}{:?}", b.stats, b.stopped));
    assert_eq!(memo_off.report().cache_hits, 0, "memoization off must never hit");
    assert!(memo_off.report().cache_misses >= 1);
    let on = memo_on.report();
    assert!(on.cache_entries <= on.cache_capacity, "{on:?}");
    assert_eq!(on.cache_capacity, 2);
    assert!(!memo_off.report().memoize);
    assert!(on.memoize);
}

/// One session handle fans out across a sweep: clones share the cache
/// and the counters, and the sweep's outputs match a cold session's.
#[test]
fn sweep_clones_share_the_session() {
    use mis_domset_lb::family::lemma6;
    let engine = Engine::builder().threads(2).build();
    let sweep = lemma6::verify_sweep(4, &engine).unwrap();
    let cold = lemma6::verify_sweep(4, &Engine::sequential()).unwrap();
    assert_eq!(format!("{sweep:?}"), format!("{cold:?}"));
    assert!(engine.report().map_batches >= 1, "the sweep must go through the session");
}

/// The report's operator counters track what actually ran.
#[test]
fn report_counts_session_operators() {
    let engine = Engine::sequential();
    let mis = family::mis(3).unwrap();
    engine.rr_step(&mis).unwrap();
    engine.iterate_with_limits(&mis, 1, 40);
    engine.auto_lower_bound(&mis, &AutoLbOptions { max_steps: 1, ..Default::default() });
    let report = engine.report();
    assert_eq!(report.iterate_runs, 1);
    assert_eq!(report.autolb_runs, 1);
    assert!(report.r_steps >= 3, "{report:?}");
    assert!(report.rbar_steps >= 3, "{report:?}");
    assert_eq!(report.threads, 1);
}
