//! CONGEST audit: measure the bandwidth footprint of every distributed
//! algorithm in the suite and report which ones already run in the
//! CONGEST model (paper §2.1: same model, `O(log n)`-bit messages).
//!
//! Lower bounds transfer from LOCAL to CONGEST for free; upper bounds do
//! not. This audit shows that the §1.1 pipelines are CONGEST-compatible
//! as implemented — their messages are lottery values, colors and flags —
//! while radius-gathering (the generic "LOCAL algorithm = function of the
//! T-ball view") is not.
//!
//! ```text
//! cargo run --example congest_audit
//! ```

use mis_domset_lb::algos::{luby, tree_mis};
use mis_domset_lb::sim::checkers::check_mis;
use mis_domset_lb::sim::congest::{congest_bandwidth, run_congest, CongestStats, MessageSize};
use mis_domset_lb::sim::runner::{NodeInfo, RunConfig, Status, SyncAlgorithm};
use mis_domset_lb::sim::trees;
use rand::rngs::StdRng;

fn row(name: &str, n: usize, rounds: usize, stats: &CongestStats) {
    println!(
        "{name:<28} {n:>6} {rounds:>7} {:>10} {:>12} {:>8}",
        stats.max_message_bits,
        stats.total_bits,
        if stats.is_congest(n) { "yes" } else { "NO" }
    );
}

/// Generic LOCAL-style ball gathering: each node floods everything it
/// knows for `radius` rounds — the textbook reason LOCAL upper bounds do
/// not transfer to CONGEST.
struct BallGather {
    known: Vec<u64>,
    left: usize,
}

impl SyncAlgorithm for BallGather {
    type Input = usize;
    type Message = Vec<u64>;
    type Output = usize;

    fn init(info: &NodeInfo, input: &usize, _rng: &mut StdRng) -> Self {
        BallGather { known: vec![info.id.expect("LOCAL")], left: *input }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<Vec<u64>> {
        vec![self.known.clone(); info.degree]
    }

    fn receive(
        &mut self,
        _info: &NodeInfo,
        incoming: Vec<Option<Vec<u64>>>,
        _rng: &mut StdRng,
    ) -> Status<usize> {
        for msg in incoming.into_iter().flatten() {
            for id in msg {
                if !self.known.contains(&id) {
                    self.known.push(id);
                }
            }
        }
        self.left -= 1;
        if self.left == 0 {
            Status::Done(self.known.len())
        } else {
            Status::Continue
        }
    }
}

fn main() {
    let n = 400usize;
    let g = trees::random_tree(n, 8, 7).expect("valid tree");
    println!(
        "CONGEST audit on a random tree: n = {n}, Δ = {}, bandwidth budget = {} bits\n",
        g.max_degree(),
        congest_bandwidth(n)
    );
    println!(
        "{:<28} {:>6} {:>7} {:>10} {:>12} {:>8}",
        "algorithm", "n", "rounds", "max bits", "total bits", "CONGEST"
    );

    // Luby's randomized MIS: 65-bit messages (tag + lottery value).
    let config = RunConfig::port_numbering(3, 400);
    let report = run_congest::<luby::Luby>(&g, &vec![(); n], &config).expect("runs");
    check_mis(&g, &report.outputs).expect("valid MIS");
    row("Luby MIS (randomized)", n, report.rounds, &report.stats);

    // H-partition peeling: zero-bit messages (presence is the signal).
    let report = run_congest::<HPartitionProbe>(&g, &vec![(); n], &config).expect("runs");
    let layers = report.outputs.clone();
    row("H-partition peeling", n, report.rounds, &report.stats);

    // Layered tree MIS sweep: 66-bit full-state messages.
    let num_layers = layers.iter().copied().max().unwrap_or(0) + 1;
    let inputs: Vec<tree_mis::LayerInput> =
        layers.iter().map(|&layer| tree_mis::LayerInput { layer, num_layers }).collect();
    let config_local = RunConfig::local(&g, 5, 8000);
    let report = run_congest::<tree_mis::LayeredSweep>(&g, &inputs, &config_local).expect("runs");
    check_mis(&g, &report.outputs).expect("valid MIS");
    row("tree MIS layered sweep", n, report.rounds, &report.stats);

    // Ball gathering: messages grow with the ball — not CONGEST.
    let config_local = RunConfig::local(&g, 5, 64);
    let report = run_congest::<BallGather>(&g, &vec![4usize; n], &config_local).expect("runs");
    row("radius-4 ball gathering", n, report.rounds, &report.stats);

    println!(
        "\nEvery paper-relevant pipeline above fits the budget; only the\n\
         generic view-gathering pattern (which LOCAL-model proofs allow\n\
         but never need here) exceeds it."
    );
}

/// The peeling algorithm of `tree_mis::h_partition`, re-run here through
/// the instrumented runner (unit messages).
struct HPartitionProbe {
    round: usize,
}

impl SyncAlgorithm for HPartitionProbe {
    type Input = ();
    type Message = ();
    type Output = usize;

    fn init(_info: &NodeInfo, _input: &(), _rng: &mut StdRng) -> Self {
        HPartitionProbe { round: 0 }
    }

    fn send(&mut self, info: &NodeInfo) -> Vec<()> {
        vec![(); info.degree]
    }

    fn receive(
        &mut self,
        _info: &NodeInfo,
        incoming: Vec<Option<()>>,
        _rng: &mut StdRng,
    ) -> Status<usize> {
        let active = incoming.iter().flatten().count();
        if active <= 2 {
            return Status::Done(self.round);
        }
        self.round += 1;
        Status::Continue
    }
}

// Ensure the audit table stays truthful if message types change.
#[allow(dead_code)]
fn static_checks() {
    fn assert_message_size<T: MessageSize>() {}
    assert_message_size::<luby::LubyMsg>();
    assert_message_size::<Vec<u64>>();
}
