//! The paper's neighborhood of problems, live: ruling sets (§1, the *other*
//! MIS relaxation), b-matchings (§1, the line-graph relatives), and the
//! view-indistinguishability argument behind the 0-round gadget
//! (Lemmas 12/15).
//!
//! ```text
//! cargo run --release --example related_problems
//! ```

use mis_domset_lb::algos::{b_matching, ruling_set};
use mis_domset_lb::sim::{checkers, edge_coloring, trees, views};

fn main() {
    // ---------------------------------------------------------------
    // Ruling sets: relax MIS's domination radius instead of its
    // independence (the paper keeps domination and relaxes independence).
    // ---------------------------------------------------------------
    println!("=== (β+1, β)-ruling sets via MIS on G^β ===");
    println!("{:>4} {:>8} {:>8} {:>14} {:>16}", "β", "n", "|S|", "G^β rounds", "simulated rounds");
    let tree = trees::complete_regular_tree(3, 6).expect("tree");
    for beta in 1..=4 {
        let rep = ruling_set::ruling_set_power_mis(&tree, beta, 11).expect("ruling set");
        checkers::check_ruling_set(&tree, &rep.in_set, beta + 1, beta).expect("valid");
        println!(
            "{:>4} {:>8} {:>8} {:>14} {:>16}",
            beta,
            tree.n(),
            rep.in_set.iter().filter(|&&b| b).count(),
            rep.power_graph_rounds,
            rep.simulated_rounds
        );
    }
    println!("(members thin out as β grows — the relaxation the paper contrasts with)");

    // ---------------------------------------------------------------
    // Maximal b-matchings: the line-graph relatives of k-outdegree
    // dominating sets (paper §1).
    // ---------------------------------------------------------------
    println!("\n=== maximal b-matchings by edge-color sweep ===");
    println!("{:>4} {:>4} {:>8} {:>10} {:>8}", "Δ", "b", "edges", "matched", "rounds");
    for delta in [3usize, 4, 5] {
        let g = trees::complete_regular_tree(delta, 3).expect("tree");
        let col = edge_coloring::tree_edge_coloring(&g).expect("coloring");
        for b in 1..=delta.min(3) {
            let rep = b_matching::maximal_b_matching(&g, &col, b, 0).expect("b-matching");
            checkers::check_maximal_b_matching(&g, &rep.in_matching, b).expect("valid");
            println!(
                "{:>4} {:>4} {:>8} {:>10} {:>8}",
                delta,
                b,
                g.m(),
                rep.in_matching.iter().filter(|&&e| e).count(),
                rep.rounds
            );
        }
    }

    // ---------------------------------------------------------------
    // The indistinguishability gadget: with ports identified along a
    // Δ-edge coloring, deep nodes have *identical* radius-T views — no
    // T-round algorithm can treat them differently (the engine of
    // Lemmas 12/15).
    // ---------------------------------------------------------------
    println!("\n=== view indistinguishability on the identified-ports gadget ===");
    let g = trees::complete_regular_tree(3, 6).expect("tree");
    let col = edge_coloring::tree_edge_coloring(&g).expect("coloring");
    let relabel: Vec<Vec<usize>> =
        (0..g.n()).map(|v| (0..g.degree(v)).map(|p| col.color_at(&g, v, p)).collect()).collect();
    let colors: Vec<usize> = col.as_slice().to_vec();
    let gadget_inputs = views::ViewInputs {
        node_input: None,
        edge_input: Some(&colors),
        port_relabel: Some(&relabel),
    };
    let plain_inputs = views::ViewInputs::default();
    println!("{:>8} {:>22} {:>22}", "radius", "classes (raw ports)", "classes (identified)");
    for t in 0..=3 {
        let (_, raw) = views::view_classes(&g, t, &plain_inputs);
        let (_, gadget) = views::view_classes(&g, t, &gadget_inputs);
        println!("{:>8} {:>22} {:>22}", t, raw, gadget);
    }
    println!("(identified ports collapse the interior into few classes: the nodes an");
    println!(" algorithm must treat identically — the heart of the 0-round impossibility)");
}
