//! The full lower-bound pipeline of the paper, end to end:
//!
//! 1. mechanical verification of Lemmas 6 and 8 at small Δ,
//! 2. the Lemma 13 chain and its Ω(log Δ) length (Table E9),
//! 3. the Theorem 1 / Corollary 2 bounds (Table E10).
//!
//! ```text
//! cargo run --release --example lower_bound_pipeline
//! ```

use mis_domset_lb::family::family::PiParams;
use mis_domset_lb::family::lemma8::Lemma8Machinery;
use mis_domset_lb::family::{bounds, lemma6, sequence};
use mis_domset_lb::Engine;

fn main() {
    // One engine session drives the whole pipeline: every sweep point and
    // Lemma 8 computation below shares its worker pool and index cache.
    let engine = Engine::from_env();

    // ---------------------------------------------------------------
    // Phase 1: mechanical lemma verification (engine-checked).
    // ---------------------------------------------------------------
    println!("=== Phase 1: Lemma 6 sweep (Δ = 3..6, all valid a, x) ===");
    for delta in 3..=6 {
        let reports = lemma6::verify_sweep(delta, &engine).expect("sweep");
        let ok = reports.iter().filter(|r| r.matches_paper()).count();
        println!("Δ = {delta}: {}/{} parameter points verified", ok, reports.len());
        assert_eq!(ok, reports.len());
    }

    println!("\n=== Phase 1b: Lemma 8 — full R̄(R(Π)) at Δ = 3, 4 ===");
    for (delta, a, x) in [(3u32, 2u32, 0u32), (4, 3, 0), (4, 4, 1)] {
        let params = PiParams { delta, a, x };
        let mach = Lemma8Machinery::compute(&params, &engine).expect("compute");
        let report = mach.verify();
        println!(
            "Δ={delta}, a={a}, x={x}: |Σ''|={:<3} |N''|={:<5} relaxes→Π_rel: {}  Π_rel=Π⁺: {}",
            report.rr_label_count,
            report.rr_node_config_count,
            report.all_node_configs_relax,
            report.pi_rel_equals_pi_plus,
        );
        assert!(report.matches_paper());
    }

    // ---------------------------------------------------------------
    // Phase 2: the Lemma 13 chain (experiment E9).
    // ---------------------------------------------------------------
    println!("\n=== Phase 2: chain length t(Δ, k) — the Ω(log Δ) bound (E9) ===");
    println!("{:>10} {:>8} {:>8} {:>12} {:>12}", "Δ", "t_paper", "t_exact", "t/log2Δ", "sound");
    let deltas = [8u32, 64, 512, 4096, 1 << 15, 1 << 18, 1 << 21, 1 << 24];
    for &delta in &deltas {
        let chain = sequence::paper_chain(delta, 0);
        let exact = sequence::exact_chain(delta, 0);
        println!(
            "{:>10} {:>8} {:>8} {:>12.3} {:>12}",
            delta,
            chain.length(),
            exact.length(),
            chain.slope(),
            sequence::chain_transitions_sound(&chain),
        );
    }

    // ---------------------------------------------------------------
    // Phase 3: Theorem 1 / Corollary 2 tables (experiment E10).
    // ---------------------------------------------------------------
    println!("\n=== Phase 3: Theorem 1 — min{{t(Δ,k), log_Δ n}} for n = 10^9 (E10) ===");
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>12} {:>12}",
        "Δ", "t", "log_Δ n", "det LB", "log_Δ logn", "rand LB"
    );
    for row in bounds::theorem1_table(1e9, &[4, 16, 64, 256, 1024, 4096, 1 << 14, 1 << 18], 0) {
        println!(
            "{:>8} {:>6} {:>10.2} {:>10.2} {:>12.3} {:>12.3}",
            row.delta, row.t, row.det_cap, row.det_bound, row.rand_cap, row.rand_bound
        );
    }

    println!("\n=== Corollary 2: balanced Δ* and the √log n shape ===");
    println!("{:>12} {:>10} {:>12} {:>12}", "n", "Δ*", "det bound", "√log₂n");
    for exp in [6, 9, 12, 18, 24, 30] {
        let n = 10f64.powi(exp);
        let (delta_star, b) = bounds::corollary2_det(n);
        println!("{:>12.0e} {:>10} {:>12.2} {:>12.2}", n, delta_star, b, n.log2().sqrt());
    }

    println!("\nk-degradation at Δ = 2^15 (Theorem 1 requires k ≤ Δ^ε):");
    for k in [0u32, 1, 2, 4, 8, 16, 64, 256] {
        println!("  k = {:>4}: t(Δ,k) = {}", k, bounds::pn_lower_bound(1 << 15, k));
    }
}
