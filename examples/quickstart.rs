//! Quickstart: build the paper's problems, run one round elimination step,
//! and machine-check Lemma 6.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mis_domset_lb::family::family::{self, PiParams};
use mis_domset_lb::family::lemma6;
use mis_domset_lb::relim::roundelim;

fn main() {
    // ---------------------------------------------------------------
    // 1. The MIS problem in the round elimination formalism (§2.2).
    // ---------------------------------------------------------------
    let mis = family::mis(3).expect("Δ = 3 is valid");
    println!("=== MIS (Δ = 3) ===");
    println!("{}\n", mis.render());

    // ---------------------------------------------------------------
    // 2. The paper's family Π_Δ(a, x) (§3.1).
    // ---------------------------------------------------------------
    let params = PiParams { delta: 4, a: 3, x: 1 };
    let pi = family::pi(&params).expect("valid parameters");
    println!("=== Π_Δ(a,x) with Δ=4, a=3, x=1 ===");
    println!("{}\n", pi.render());

    // ---------------------------------------------------------------
    // 3. One application of R(·) — the first half of a round elimination
    //    step (§2.3).
    // ---------------------------------------------------------------
    let step = roundelim::r_step(&pi).expect("Π is non-degenerate");
    println!("=== R(Π) — computed by the engine ===");
    println!("new labels (as sets of old labels):");
    for (i, set) in step.provenance.iter().enumerate() {
        println!("  {} = {}", step.problem.alphabet().names()[i], set.display(pi.alphabet()));
    }
    println!(
        "|N| = {} configurations, |E| = {} configurations\n",
        step.problem.node().len(),
        step.problem.edge().len()
    );

    // ---------------------------------------------------------------
    // 4. Lemma 6, mechanically verified: the engine's R(Π) must equal the
    //    paper's claimed 8-label problem exactly, including Figure 5.
    // ---------------------------------------------------------------
    let report = lemma6::verify(&params).expect("hypothesis x+2 <= a <= Δ holds");
    println!("=== Lemma 6 verification at Δ=4, a=3, x=1 ===");
    println!("provenance matches paper : {}", report.provenance_matches);
    println!("node constraint matches  : {}", report.node_matches);
    println!("edge constraint matches  : {}", report.edge_matches);
    println!("Figure 5 node diagram    : {}", report.figure5_matches);
    assert!(report.matches_paper(), "Lemma 6 must verify");
    println!("\nLemma 6 verified. ✓");
}
