//! A tour of the problem family on a concrete tree (Figures 2 and 3):
//! solve `Π_4(2,2)` on a Δ-regular tree, render the labeling, then walk
//! the Lemma 9 and Lemma 11 transformations.
//!
//! ```text
//! cargo run --example family_tour
//! ```

use mis_domset_lb::family::convert::{self, BoundaryPolicy};
use mis_domset_lb::family::family::{self, PiParams};
use mis_domset_lb::family::transforms;
use mis_domset_lb::sim::lcl_solver::LeafPolicy;
use mis_domset_lb::sim::{edge_coloring, trees, Graph, PortLabeling};

const LABEL_NAMES: [&str; 6] = ["M", "P", "O", "A", "X", "C"];

fn render(graph: &Graph, labeling: &PortLabeling, title: &str) {
    println!("--- {title} ---");
    for v in 0..graph.n().min(16) {
        let labels: Vec<String> = (0..graph.degree(v))
            .map(|p| {
                format!("{}:{}", graph.neighbor(v, p), LABEL_NAMES[labeling.get(v, p) as usize])
            })
            .collect();
        let kind = node_kind(labeling.node_labels(v));
        println!("  node {v:>2} ({kind:<7}) -> {}", labels.join("  "));
    }
    if graph.n() > 16 {
        println!("  … ({} more nodes)", graph.n() - 16);
    }
}

fn node_kind(labels: &[u8]) -> &'static str {
    if labels.contains(&family::C) {
        "type-C"
    } else if labels.contains(&family::A) {
        "type-3"
    } else if labels.contains(&family::M) {
        "type-1"
    } else if labels.contains(&family::P) {
        "type-2"
    } else {
        "pure-X"
    }
}

fn main() {
    // Figure 2's setting: a = 2, x = 2 — here on a Δ=4 regular tree.
    let params = PiParams { delta: 4, a: 2, x: 2 };
    let pi = family::pi(&params).expect("valid parameters");
    println!("=== Π_Δ(a,x) with Δ=4, a=2, x=2 (Figure 2's parameters) ===");
    println!("{}\n", pi.render());

    let tree = trees::complete_regular_tree(4, 3).expect("tree");
    println!("tree: complete 4-regular tree of depth 3 ({} nodes, {} edges)\n", tree.n(), tree.m());

    let inst = convert::to_lcl(&pi, LeafPolicy::SubMultiset).expect("convert");
    let labeling = inst.solve(&tree, 2021).expect("tree ok").expect("Π_4(2,2) is solvable");
    convert::check_labeling(&pi, &tree, &labeling, BoundaryPolicy::SubMultiset)
        .expect("solver output is valid");
    render(&tree, &labeling, "a valid Π_4(2,2) labeling (checker-approved)");

    // ---------------------------------------------------------------
    // Lemma 11: relax to a smaller a / larger x.
    // ---------------------------------------------------------------
    let to = PiParams { delta: 4, a: 1, x: 3 };
    let relaxed = transforms::lemma11_relax(&params, &to, &tree, &labeling).expect("relax");
    let pi_to = family::pi(&to).expect("valid");
    convert::check_labeling(&pi_to, &tree, &relaxed, BoundaryPolicy::InteriorOnly)
        .expect("Lemma 11 output is valid");
    println!("\nLemma 11: relaxed Π_4(2,2) → Π_4(1,3) in 0 rounds. ✓");

    // ---------------------------------------------------------------
    // Lemma 9: from Π⁺ to the next family member, using a Δ-edge coloring.
    // ---------------------------------------------------------------
    let plus_params = PiParams { delta: 4, a: 3, x: 0 };
    let plus = family::pi_plus(&plus_params).expect("valid");
    let plus_inst = convert::to_lcl(&plus, LeafPolicy::SubMultiset).expect("convert");
    let plus_sol = plus_inst.solve(&tree, 99).expect("tree ok").expect("Π⁺ solvable");
    let coloring = edge_coloring::tree_edge_coloring(&tree).expect("Δ-edge coloring");
    println!(
        "\nΔ-edge coloring with {} colors computed (the Lemma 9 input).",
        coloring.num_colors()
    );
    let (converted, next) =
        transforms::lemma9_transform(&plus_params, &tree, &coloring, &plus_sol).expect("transform");
    let pi_next = family::pi(&next).expect("valid");
    convert::check_labeling(&pi_next, &tree, &converted, BoundaryPolicy::InteriorOnly)
        .expect("Lemma 9 output is valid");
    println!("Lemma 9: Π⁺_4(3,0) solution → Π_4({},{}) solution in 0 rounds. ✓", next.a, next.x);
    render(&tree, &converted, "the transformed labeling");
}
