//! The engine at full (δ_B, δ_W)-biregular generality, and §1's matching
//! problems: hypergraph fixed points, dual views, the b-matching
//! triviality landscape, and the line-graph bridge.
//!
//! ```text
//! cargo run --release --example biregular_tour
//! ```

use mis_domset_lb::algos::luby;
use mis_domset_lb::family::matchings;
use mis_domset_lb::relim::autolb::{self, AutoLbOptions, Triviality};
use mis_domset_lb::relim::biregular::{self, BiregularProblem};
use mis_domset_lb::relim::zeroround;
use mis_domset_lb::sim::{checkers, trees};

fn main() {
    // ---------------------------------------------------------------
    // 1. Hypergraph sinkless orientation: the STOC'16 fixed point,
    //    generalized to rank-r hyperedges. One full biregular step
    //    preserves the problem — the Ω(log log n)-randomized /
    //    Ω(log n)-deterministic signature the paper's §1.3 builds on.
    // ---------------------------------------------------------------
    println!("=== hypergraph sinkless orientation across ranks ===");
    for (db, dw) in [(3u32, 2u32), (3, 3), (4, 3), (3, 4)] {
        let black = format!("O{}", " I".repeat(db as usize - 1));
        let white = format!("[O I]{}", " I".repeat(dw as usize - 1));
        let hso = BiregularProblem::from_text(&black, &white).expect("valid");
        let (_, step) = biregular::full_step(&hso).expect("engine");
        let q = &step.problem;
        println!(
            "(δ_B, δ_W) = ({db},{dw}): |Σ| {} → {}, |B| {} → {}, |W| {} → {}, trivial: {}",
            hso.alphabet().len(),
            q.alphabet().len(),
            hso.black().len(),
            q.black().len(),
            hso.white().len(),
            q.white().len(),
            biregular::trivial_black(q).is_some(),
        );
    }
    println!();

    // ---------------------------------------------------------------
    // 2. Dual views: a (Δ, 2) problem studied from the edge side.
    // ---------------------------------------------------------------
    let mm = matchings::maximal_matching_problem(3).expect("valid");
    let bi = BiregularProblem::from_problem(&mm);
    let dual = bi.dual();
    println!("=== maximal matching (Δ = 3) and its dual view ===");
    println!("primal degrees {:?}, dual degrees {:?}", bi.degrees(), dual.degrees());
    let via_white = biregular::half_step(&bi, biregular::Side::White).expect("engine");
    let via_dual = biregular::half_step(&dual, biregular::Side::Black).expect("engine");
    println!(
        "half step from either view agrees: {}\n",
        via_white.problem.semantically_equal(&via_dual.problem.dual())
    );

    // ---------------------------------------------------------------
    // 3. The b-matching triviality landscape (§1's related problems):
    //    bare-trivial iff b = Δ; always 0-round given a Δ-edge coloring
    //    on regular trees (color classes are perfect matchings). This is
    //    the sharp statement of why the matching bounds of FOCS'19 /
    //    PODC'20 concern a different input regime than the paper's MIS
    //    bound, which survives the coloring.
    // ---------------------------------------------------------------
    println!("=== b-matching 0-round landscape (Δ = 4) ===");
    println!("{:>3} {:>9} {:>24}", "b", "bare PN", "given Δ-edge coloring");
    for b in 1..=4u32 {
        let p = matchings::maximal_b_matching_problem(4, b).expect("valid");
        println!(
            "{:>3} {:>9} {:>24}",
            b,
            if zeroround::solvable_pn_universal(&p) { "yes" } else { "no" },
            if zeroround::solvable_deterministically(&p) { "yes" } else { "no" }
        );
    }
    println!();

    // ---------------------------------------------------------------
    // 4. Without the coloring, the automatic search certifies a lower
    //    bound for maximal matching — with a replayable certificate.
    // ---------------------------------------------------------------
    let opts = AutoLbOptions { max_steps: 2, label_budget: 6, triviality: Triviality::Universal };
    let outcome = mis_domset_lb::Engine::from_env().auto_lower_bound(&mm, &opts);
    autolb::verify_chain(&outcome).expect("certificate replays");
    println!(
        "autolb (universal, budget 6): maximal matching at Δ = 3 needs ≥ {} rounds ({:?})\n",
        outcome.certified_rounds, outcome.stopped
    );

    // ---------------------------------------------------------------
    // 5. §1.1 executable: an MIS of the line graph is a maximal
    //    matching. Run Luby on L(G), pull the set back to edges, check.
    // ---------------------------------------------------------------
    let g = trees::random_tree(80, 5, 11).expect("tree");
    let lg = g.line_graph();
    let rep = luby::luby_mis(&lg, 11).expect("runs");
    checkers::check_mis(&lg, &rep.in_set).expect("valid MIS of L(G)");
    let matching = matchings::matching_from_line_mis(&g, &rep.in_set).expect("shape");
    checkers::check_maximal_matching(&g, &matching).expect("valid maximal matching");
    matchings::check_b_matching_labeling(&g, &matching, g.max_degree() as u32, 1)
        .expect("labeling satisfies the encoding");
    println!("=== line-graph bridge ===");
    println!("tree: n = {}, m = {}; L(G): n = {}, m = {}", g.n(), g.m(), lg.n(), lg.m());
    println!(
        "Luby MIS of L(G) → maximal matching of G: {} matched edges, all checks pass ✓",
        matching.iter().filter(|&&b| b).count()
    );
}
