//! Regenerates the paper's diagrams (Figures 1, 4 and 5) from the
//! constraints alone, as ASCII relations and Graphviz DOT.
//!
//! ```text
//! cargo run --example diagrams
//! ```

use mis_domset_lb::family::family::{self, PiParams};
use mis_domset_lb::family::lemma6;
use mis_domset_lb::relim::diagram::StrengthOrder;
use mis_domset_lb::relim::Problem;

fn show(problem: &Problem, constraint_name: &str, title: &str) {
    let constraint = match constraint_name {
        "edge" => problem.edge(),
        _ => problem.node(),
    };
    let order = StrengthOrder::of_constraint(constraint, problem.alphabet().len());
    println!("=== {title} ===");
    for (a, b) in order.hasse_edges() {
        println!(
            "  {} → {}   ({} is stronger)",
            problem.alphabet().name(a),
            problem.alphabet().name(b),
            problem.alphabet().name(b),
        );
    }
    println!("\nDOT:\n{}", order.to_dot(problem.alphabet(), title));
}

fn main() {
    // Figure 1: the edge diagram of MIS — exactly one arrow, P → O.
    let mis = family::mis(3).expect("valid");
    show(&mis, "edge", "Figure 1: MIS edge diagram");

    // Figure 4: the edge diagram of Π_Δ(a,x) — P → A → O → X and M → X.
    let params = PiParams { delta: 6, a: 4, x: 1 };
    let pi = family::pi(&params).expect("valid");
    show(&pi, "edge", "Figure 4: edge diagram of Π_Δ(a,x)");

    // Figure 5: the node diagram of R(Π_Δ(a,x)) — the inclusion order on
    // the 8 right-closed renaming sets.
    let claimed = lemma6::claimed_r_of_pi(&params).expect("valid");
    show(&claimed, "node", "Figure 5: node diagram of R(Π_Δ(a,x))");

    // Cross-check against the hard-coded expectations used by the tests.
    let order = StrengthOrder::of_constraint(claimed.node(), claimed.alphabet().len());
    let mut got: Vec<(u8, u8)> =
        order.hasse_edges().into_iter().map(|(a, b)| (a.raw(), b.raw())).collect();
    got.sort_unstable();
    let mut want = lemma6::figure5_expected_hasse();
    want.sort_unstable();
    assert_eq!(got, want, "Figure 5 regeneration must match the paper");
    println!("All three figures match the paper. ✓");
}
