//! Upper-bound simulations (experiments E11 and E12): run the distributed
//! algorithms of §1.1 on Δ-regular trees and report *measured* rounds.
//!
//! ```text
//! cargo run --release --example kods_simulation
//! ```

use mis_domset_lb::algos::{self, luby};
use mis_domset_lb::family::family::{self, PiParams};
use mis_domset_lb::family::{convert, transforms};
use mis_domset_lb::sim::{checkers, trees};

fn main() {
    // ---------------------------------------------------------------
    // E11: the k-outdegree dominating set pipeline — sweep rounds vs Δ/k.
    // ---------------------------------------------------------------
    println!("=== E11: k-ODS pipeline on complete Δ-regular trees ===");
    println!(
        "{:>4} {:>4} {:>7} {:>9} {:>11} {:>7} {:>7} {:>7}",
        "Δ", "k", "n", "buckets", "Δ/(k+1)+1", "color", "bucket", "sweep"
    );
    for delta in [4usize, 6, 8] {
        let depth = if delta >= 8 { 2 } else { 3 };
        let tree = trees::complete_regular_tree(delta, depth).expect("tree");
        for k in 0..=delta {
            let rep = algos::k_outdegree_domset(&tree, k, 7).expect("pipeline");
            checkers::check_k_outdegree_domset(&tree, &rep.in_set, &rep.orientation, k)
                .expect("valid k-ODS");
            println!(
                "{:>4} {:>4} {:>7} {:>9} {:>11} {:>7} {:>7} {:>7}",
                delta,
                k,
                tree.n(),
                rep.buckets,
                delta / (k + 1) + 1,
                rep.rounds.coloring,
                rep.rounds.bucketing,
                rep.rounds.sweep,
            );
        }
    }
    println!("(the sweep column is the phase the paper's Ω(log Δ) bound addresses)");

    // ---------------------------------------------------------------
    // E12: deterministic vs randomized MIS.
    // ---------------------------------------------------------------
    println!("\n=== E12: MIS — deterministic sweep vs Luby on Δ-regular trees ===");
    println!(
        "{:>4} {:>7} {:>18} {:>18} {:>12}",
        "Δ", "n", "det total rounds", "det sweep rounds", "Luby rounds"
    );
    for delta in [3usize, 4, 5, 6] {
        let depth = if delta >= 6 { 2 } else { 3 };
        let tree = trees::complete_regular_tree(delta, depth).expect("tree");
        let det = algos::mis_deterministic(&tree, 5).expect("det MIS");
        checkers::check_mis(&tree, &det.in_set).expect("valid MIS");
        let mut luby_rounds = Vec::new();
        for seed in 0..5 {
            let r = luby::luby_mis(&tree, seed).expect("luby");
            checkers::check_mis(&tree, &r.in_set).expect("valid MIS");
            luby_rounds.push(r.rounds);
        }
        let avg: f64 = luby_rounds.iter().sum::<usize>() as f64 / luby_rounds.len() as f64;
        println!(
            "{:>4} {:>7} {:>18} {:>18} {:>12.1}",
            delta,
            tree.n(),
            det.rounds.total(),
            det.rounds.sweep,
            avg
        );
    }
    println!("(deterministic rounds grow with Δ; Luby's stay ~log n — the paper's regime split)");

    // ---------------------------------------------------------------
    // Lemma 5 live: pipeline output → Π_Δ(a,k) labeling → checker.
    // ---------------------------------------------------------------
    println!("\n=== Lemma 5 live: k-ODS output feeds the lower-bound family ===");
    let delta = 5usize;
    let k = 1usize;
    let tree = trees::complete_regular_tree(delta, 3).expect("tree");
    let rep = algos::k_outdegree_domset(&tree, k, 3).expect("pipeline");
    let labeling = transforms::lemma5_transform(&tree, &rep.in_set, &rep.orientation, k as u32)
        .expect("transform");
    let pi = family::pi(&PiParams { delta: delta as u32, a: 3, x: k as u32 }).expect("valid");
    convert::check_labeling(&pi, &tree, &labeling, convert::BoundaryPolicy::InteriorOnly)
        .expect("Lemma 5 output is a valid Π_Δ(a,k) solution");
    println!(
        "k-ODS (|S| = {}) → Π_{}(3,{}) labeling: checker-approved. ✓",
        rep.in_set.iter().filter(|&&b| b).count(),
        delta,
        k
    );
}
