//! Automatic lower- and upper-bound search: the engine rediscovers bounds
//! without any of the paper's hand-crafted machinery, and emits
//! machine-checkable certificates for everything it claims.
//!
//! ```text
//! cargo run --example autobounds
//! ```

use mis_domset_lb::family::family::{self, PiParams};
use mis_domset_lb::family::sequence;
use mis_domset_lb::relim::autolb::{self, AutoLbOptions, Triviality};
use mis_domset_lb::relim::autoub::{self, AutoUbOptions, UbKind};
use mis_domset_lb::relim::{zeroround, Problem};
use mis_domset_lb::Engine;

fn main() {
    // One session for the whole walkthrough: the searches below share its
    // worker pool and sub-multiset index cache.
    let engine = Engine::from_env();

    // ---------------------------------------------------------------
    // 1. Sinkless orientation: the search detects the fixed point and
    //    certifies an unbounded PN lower bound (⇒ Ω(log n) LOCAL).
    // ---------------------------------------------------------------
    let so = Problem::from_text("O I I", "[O I] I").expect("valid");
    let outcome = engine.auto_lower_bound(&so, &AutoLbOptions::default());
    println!("=== autolb: sinkless orientation (Δ = 3) ===");
    println!("stopped: {:?}", outcome.stopped);
    println!("unbounded fixed point: {}", outcome.unbounded());
    let replayed = autolb::verify_chain(&outcome).expect("certificate replays");
    println!("certificate replay: OK ({replayed} explicit rounds)\n");

    // ---------------------------------------------------------------
    // 2. MIS at Δ = 3: a fully automatic chain under a 6-label budget.
    //    Every step is R̄(R(·)) followed by label merges (each merge is a
    //    relaxation, so the chain stays a valid lower-bound sequence).
    // ---------------------------------------------------------------
    let mis = family::mis(3).expect("valid");
    let opts = AutoLbOptions { max_steps: 3, label_budget: 6, ..Default::default() };
    let outcome = engine.auto_lower_bound(&mis, &opts);
    println!("=== autolb: MIS (Δ = 3), budget 6 labels ===");
    for (i, step) in outcome.steps.iter().enumerate() {
        // Derived label names are sets-of-sets and get long; print counts
        // (the CLI's `relim autolb` prints them in full).
        println!(
            "step {}: |Σ| {} → {}   ({} merges)",
            i + 1,
            step.raw.alphabet().len(),
            step.problem.alphabet().len(),
            step.merges.len()
        );
    }
    println!("stopped: {:?}", outcome.stopped);
    println!(
        "certified: ≥ {} rounds, even given a Δ-edge coloring (criterion {:?})",
        outcome.certified_rounds, outcome.triviality
    );
    autolb::verify_chain(&outcome).expect("certificate replays");
    println!("certificate replay: OK\n");

    // ---------------------------------------------------------------
    // 3. The same engine applied to the paper's own family members:
    //    Lemma 12 promises non-triviality, and the search confirms it.
    // ---------------------------------------------------------------
    println!("=== autolb across Π_Δ(a,x) family members ===");
    for (delta, a, x) in [(3u32, 3u32, 0u32), (4, 4, 0), (4, 3, 1)] {
        let p = family::pi(&PiParams { delta, a, x }).expect("valid");
        let opts = AutoLbOptions { max_steps: 1, label_budget: 6, ..Default::default() };
        let o = engine.auto_lower_bound(&p, &opts);
        println!("Π_{delta}({a},{x}): certified ≥ {} rounds ({:?})", o.certified_rounds, o.stopped);
    }
    println!();

    // ---------------------------------------------------------------
    // 4. Compare with the paper's hand-crafted Lemma 13 chain at large Δ:
    //    the generic search cannot scale there — which is exactly why the
    //    paper's constant-label family matters.
    // ---------------------------------------------------------------
    println!("=== paper chain vs generic search ===");
    for delta in [64u32, 1024, 4096] {
        let chain = sequence::paper_chain(delta, 0);
        println!(
            "Δ = {delta}: paper chain length {} ⇒ PN lower bound ≥ {} rounds",
            chain.length(),
            chain.pn_round_lower_bound()
        );
    }
    println!();

    // ---------------------------------------------------------------
    // 5. Upper bounds. MIS on cycles (Δ = 2): 0 rounds given a proper
    //    2-coloring (map the two classes to MM / PO), a constant number of
    //    rounds given a 3-coloring — certified by replaying the chain.
    // ---------------------------------------------------------------
    let mis2 = family::mis(2).expect("valid");
    println!("=== autoub: MIS on cycles (Δ = 2) ===");
    println!(
        "0-round solvable given 2-coloring: {}",
        zeroround::coloring_witness(&mis2, 2).is_some()
    );
    println!(
        "0-round solvable given 3-coloring: {}",
        zeroround::coloring_witness(&mis2, 3).is_some()
    );
    let opts = AutoUbOptions { max_steps: 6, label_budget: 14, coloring: Some(3) };
    let outcome = engine.auto_upper_bound(&mis2, &opts);
    let bound = outcome.bound.clone().expect("bounded given a 3-coloring");
    let kind = match &bound.kind {
        UbKind::Pn => "bare PN".to_owned(),
        UbKind::EdgeColoring => "given a Δ-edge coloring".to_owned(),
        UbKind::VertexColoring { colors } => format!("given a proper {colors}-coloring"),
    };
    println!("upper bound: {} rounds ({kind})", bound.rounds);
    autoub::verify_ub(&outcome).expect("certificate replays");
    println!("certificate replay: OK\n");

    // ---------------------------------------------------------------
    // 6. A subtlety the engine surfaces: 0-round triviality can *appear*
    //    after a speedup step, because radius-0 views cannot see the edge
    //    orientation input while radius-1 views can (the very remark in
    //    the paper's Lemma 12 proof). This problem is 0-round unsolvable
    //    but 1-round solvable:
    // ---------------------------------------------------------------
    let p = Problem::from_text("A B\nA C\nB C\nC C", "A C\nB B").expect("valid");
    println!("=== triviality appearing at radius 1 ===");
    println!(
        "0-round: universal = {}, gadget = {}",
        zeroround::solvable_pn_universal(&p),
        zeroround::solvable_deterministically(&p)
    );
    let outcome = engine
        .auto_upper_bound(&p, &AutoUbOptions { max_steps: 2, label_budget: 16, coloring: None });
    println!(
        "autoub: {} rounds",
        outcome.bound.as_ref().map_or("none".to_owned(), |b| b.rounds.to_string())
    );
    autoub::verify_ub(&outcome).expect("certificate replays");

    // Lower/upper bounds certified by the same engine are consistent.
    let lb = engine.auto_lower_bound(
        &p,
        &AutoLbOptions { max_steps: 2, label_budget: 16, triviality: Triviality::Universal },
    );
    let ub = outcome.bound.expect("present").rounds;
    assert!(lb.certified_rounds <= ub, "lb {} vs ub {ub}", lb.certified_rounds);
    println!("lb {} ≤ ub {ub} ✓", lb.certified_rounds);
}
