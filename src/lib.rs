//! # mis-domset-lb — facade crate
//!
//! Reproduction of Balliu, Brandt, Kuhn, Olivetti,
//! *"Improved Distributed Lower Bounds for MIS and Bounded (Out-)Degree
//! Dominating Sets in Trees"* (PODC 2021, arXiv:2106.02440).
//!
//! This crate re-exports the five workspace crates:
//!
//! * [`relim`] — the round elimination engine (`relim-core`), whose
//!   stateful session API [`Engine`] is the system's entry point
//!   (re-exported at this root for convenience),
//! * [`family`] — the paper's `Π_Δ(a,x)` problem family and lemma machinery
//!   (`lb-family`),
//! * [`sim`] — the LOCAL / port-numbering model simulator (`local-sim`),
//! * [`algos`] — the distributed upper-bound algorithms (`local-algos`),
//! * [`service`] — the serving layer (`relim-service`): a job-queue
//!   daemon over one shared `Engine` with a content-addressed,
//!   disk-persistent result store and a JSON-lines TCP protocol. The
//!   [`Client`] type (re-exported at this root) is the programmatic way
//!   to talk to a running `relim serve` daemon,
//! * [`pool`] — the work-stealing thread pool underneath (`relim-pool`);
//!   the `Engine` session owns the pool handle, so downstream code
//!   normally never touches this crate directly.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-figure reproduction index; the `examples/` directory contains
//! runnable walkthroughs (start with `cargo run --example quickstart`).
//!
//! The README (rendered below) doubles as a compile-checked tour.
#![doc = include_str!("../README.md")]

pub use lb_family as family;
pub use local_algos as algos;
pub use local_sim as sim;
pub use relim_core as relim;
pub use relim_core::{Engine, EngineBuilder, EngineReport};
pub use relim_pool as pool;
pub use relim_service as service;
pub use relim_service::{Client, OpRequest};
